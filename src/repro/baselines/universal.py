"""The universal baseline: ship the whole graph in every label.

Any decidable property admits a Θ(m log n)-bit scheme — every vertex
receives the full edge list (as identifier pairs), checks that its own
incident edges match the claim, that all neighbors hold the identical
description, and evaluates the property centrally on the claimed graph.
This calibrates how far both the Theorem 1 scheme and the FMRT baseline
sit below the trivial upper bound (experiment E2's third column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs import Graph
from repro.pls.bits import SizeContext
from repro.pls.model import Configuration, LocalView
from repro.pls.scheme import Labeling, ProofLabelingScheme, ProverFailure


@dataclass(frozen=True)
class UniversalLabel:
    """The full configuration as identifier lists."""

    vertex_ids: tuple
    edge_ids: tuple  # sorted (id_u, id_v) pairs


class UniversalScheme(ProofLabelingScheme):
    """Θ(m log n)-bit certification of an arbitrary property."""

    label_location = "vertices"

    def __init__(self, checker: Callable[[Graph], bool]):
        self.checker = checker

    def prove(self, config: Configuration) -> Labeling:
        if not self.checker(config.graph):
            raise ProverFailure("property does not hold")
        vertex_ids = tuple(sorted(config.ids[v] for v in config.graph.vertices()))
        edge_ids = tuple(
            sorted(
                tuple(sorted((config.ids[u], config.ids[v])))
                for u, v in config.graph.edges()
            )
        )
        label = UniversalLabel(vertex_ids=vertex_ids, edge_ids=edge_ids)
        mapping = {v: label for v in config.graph.vertices()}
        return Labeling("vertices", mapping, SizeContext(config.n))

    def verify(self, view: LocalView) -> bool:
        label = view.own_certificate
        if not isinstance(label, UniversalLabel):
            return False
        if any(c != label for c in view.neighbor_certificates):
            return False
        if view.identifier not in label.vertex_ids:
            return False
        claimed_degree = sum(
            1 for pair in label.edge_ids if view.identifier in pair
        )
        if claimed_degree != view.degree:
            return False
        claimed = Graph(vertices=label.vertex_ids, edges=label.edge_ids)
        return bool(self.checker(claimed))

    def label_size_bits(self, label, ctx: SizeContext) -> int:
        if not isinstance(label, UniversalLabel):
            return ctx.id_bits
        return (len(label.vertex_ids) + 2 * len(label.edge_ids)) * ctx.id_bits
