"""The FMRT'24-style baseline: O(log^2 n)-bit labels via balanced
tree decompositions.

Fraigniaud, Montealegre, Rapaport, and Todinca certify MSO2 properties on
bounded-treewidth graphs by (1) rebalancing the decomposition to depth
O(log n) at 3x width (Section 3 of our paper recalls this), and (2)
storing, in each vertex's label, one record per ancestor bag of its home
bag: the bag's contents and the homomorphism class of the subtree hanging
below it.  Θ(log n) ancestors × Θ(log n) bits per record gives the
Θ(log^2 n) label size that Theorem 1 improves to Θ(log n).

This implementation is the label-size comparator for experiment E2: the
prover and the size accounting are faithful; the verifier performs the
per-vertex consistency checks (home-bag membership, root-path prefix
agreement with neighbors, root class acceptance) sufficient for the
completeness and measurement experiments — the full soundness argument of
FMRT'24 routes information along the decomposition with O(log n)
congestion, which is precisely the overhead the paper eliminates, and is
out of scope here (DESIGN.md records the substitution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.courcelle.algebra import BoundedAlgebra
from repro.courcelle.boundary import REAL
from repro.courcelle.registry import algebra_for
from repro.pathwidth.balanced import balanced_binary_decomposition
from repro.pathwidth.exact import exact_path_decomposition
from repro.pathwidth.heuristics import heuristic_path_decomposition
from repro.pls.bits import ClassIndexer, SizeContext
from repro.pls.model import Configuration, LocalView
from repro.pls.scheme import Labeling, ProofLabelingScheme, ProverFailure


@dataclass(frozen=True)
class BagRecord:
    """One ancestor bag in a vertex's label."""

    node: int  # decomposition node serial
    parent: int  # parent serial (-1 at the root)
    bag_ids: tuple  # identifiers of the bag's vertices
    subtree_class: object  # homomorphism class of the graph below this bag


@dataclass(frozen=True)
class FMRTLabel:
    """Root-path records for one vertex (root first)."""

    records: tuple
    home: int  # serial of the vertex's home bag


def _default_decomposer(graph):
    if graph.n <= 14:
        return exact_path_decomposition(graph)
    return heuristic_path_decomposition(graph)


class FMRTScheme(ProofLabelingScheme):
    """Certify ``φ ∧ (width ≤ k)`` with Θ(log² n) vertex labels."""

    label_location = "vertices"

    def __init__(self, algebra, k: int, decomposer: Optional[Callable] = None):
        if isinstance(algebra, str):
            algebra = algebra_for(algebra)
        if not isinstance(algebra, BoundedAlgebra):
            raise TypeError("algebra must be a BoundedAlgebra or registry key")
        self.algebra = algebra
        self.k = k
        self.decomposer = decomposer or _default_decomposer

    # ------------------------------------------------------------------
    def prove(self, config: Configuration) -> Labeling:
        graph = config.graph
        if not graph.is_connected() or graph.n < 2:
            raise ProverFailure("need a connected graph on >= 2 vertices")
        decomposition = self.decomposer(graph)
        if decomposition.width() > self.k:
            raise ProverFailure("no decomposition within the width bound")
        balanced = balanced_binary_decomposition(decomposition)

        # Assign every edge to its deepest covering node; run the DP.
        order = balanced.topological_order()
        depth_of = {balanced.root: 0}
        for node in order:
            for child in balanced.children[node]:
                depth_of[child] = depth_of[node] + 1
        edge_home: dict = {}
        for u, v in graph.edges():
            best = None
            for node in order:
                bag = set(balanced.bags[node])
                if u in bag and v in bag:
                    if best is None or depth_of[node] > depth_of[best]:
                        best = node
            edge_home[(u, v)] = best

        indexer = ClassIndexer()
        subtree_state: dict = {}
        subtree_boundary: dict = {}

        def solve(node) -> None:
            bag = list(balanced.bags[node])
            state = self.algebra.new_vertices(len(bag))
            boundary = list(bag)
            for u, v in graph.edges():
                if edge_home[(u, v)] == node:
                    state = self.algebra.add_edge(
                        state, boundary.index(u), boundary.index(v), REAL
                    )
            for child in balanced.children[node]:
                solve(child)
                child_boundary = subtree_boundary[child]
                shared = [x for x in child_boundary if x in boundary]
                identify = tuple(
                    (boundary.index(x), child_boundary.index(x)) for x in shared
                )
                state = self.algebra.join(
                    state,
                    len(boundary),
                    subtree_state[child],
                    len(child_boundary),
                    identify,
                )
                extra = [x for x in child_boundary if x not in boundary]
                merged = boundary + extra
                keep = tuple(merged.index(x) for x in bag)
                state = self.algebra.forget(state, len(merged), keep)
                boundary = list(bag)
            subtree_state[node] = state
            subtree_boundary[node] = boundary
            indexer.index_of(self.algebra.state_fingerprint(state))

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * len(order) + 100))
        try:
            solve(balanced.root)
        finally:
            sys.setrecursionlimit(old_limit)

        root_state = subtree_state[balanced.root]
        if not self.algebra.accepts(root_state, len(subtree_boundary[balanced.root])):
            raise ProverFailure("property does not hold")

        # Home bag per vertex: its deepest occurrence.
        home: dict = {}
        for node in order:
            for v in balanced.bags[node]:
                if v not in home or depth_of[node] > depth_of[home[v]]:
                    home[v] = node
        serial = {node: i for i, node in enumerate(order)}
        mapping = {}
        for v in graph.vertices():
            records = []
            for node in balanced.root_path(home[v]):
                parent = balanced.parent[node]
                records.append(
                    BagRecord(
                        node=serial[node],
                        parent=-1 if parent is None else serial[parent],
                        bag_ids=tuple(
                            sorted(config.ids[x] for x in balanced.bags[node])
                        ),
                        subtree_class=subtree_state[node],
                    )
                )
            mapping[v] = FMRTLabel(records=tuple(records), home=serial[home[v]])
        ctx = SizeContext(config.n, class_count=indexer.class_count)
        return Labeling("vertices", mapping, ctx)

    # ------------------------------------------------------------------
    def verify(self, view: LocalView) -> bool:
        label = view.own_certificate
        if not isinstance(label, FMRTLabel) or not label.records:
            return False
        # Own id in the home bag; parent chain well-formed; root consistent.
        if view.identifier not in label.records[-1].bag_ids:
            return False
        if label.records[-1].node != label.home:
            return False
        if label.records[0].parent != -1:
            return False
        for above, below in zip(label.records, label.records[1:]):
            if below.parent != above.node:
                return False
        root = label.records[0]
        if not self.algebra.accepts(root.subtree_class, len(root.bag_ids)):
            return False
        for neighbor in view.neighbor_certificates:
            if not isinstance(neighbor, FMRTLabel) or not neighbor.records:
                return False
            if neighbor.records[0] != root:
                return False
            # Shared root-path prefixes must agree record-for-record.
            for mine_r, theirs_r in zip(label.records, neighbor.records):
                if mine_r.node != theirs_r.node:
                    break
                if mine_r != theirs_r:
                    return False
        return True
        # Note: the bag covering an edge need not lie on either endpoint's
        # root path, so full edge-coverage verification requires the
        # O(log n)-congestion routing of FMRT'24 — out of scope for this
        # size-comparator baseline (see the module docstring).

    # ------------------------------------------------------------------
    def label_size_bits(self, label, ctx: SizeContext) -> int:
        if not isinstance(label, FMRTLabel):
            return ctx.id_bits
        total = ctx.counter_bits  # home pointer
        for record in label.records:
            total += 2 * ctx.counter_bits  # node + parent serials
            total += len(record.bag_ids) * ctx.id_bits
            total += ctx.class_bits
        return total
