"""k-lane partitions of interval representations (Definition 4.2).

A k-lane partition splits the vertex set into ``k`` non-empty sequences,
each strictly increasing under the ``≺`` order on intervals (pairwise
disjoint intervals per lane).  Observation 4.3 — the clique number equals
the chromatic number on interval graphs — guarantees that a width-``k``
representation admits a ``k``-lane partition; :func:`greedy_lane_partition`
realizes it with the textbook sweep.
"""

from __future__ import annotations

from repro.pathwidth.interval import IntervalRepresentation


class KLanePartition:
    """A validated lane partition of an interval representation.

    ``lanes`` is a list of vertex lists; lane ``i``'s vertices must have
    pairwise-disjoint intervals listed in ``≺`` order, and the lanes must
    partition the vertex set.
    """

    def __init__(self, rep: IntervalRepresentation, lanes, validate: bool = True):
        self.rep = rep
        self.lanes = [list(lane) for lane in lanes]
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` unless this is a valid lane partition."""
        seen: set = set()
        for index, lane in enumerate(self.lanes):
            if not lane:
                raise ValueError(f"lane {index} is empty")
            for v in lane:
                if v in seen:
                    raise ValueError(f"vertex {v!r} appears in two lanes")
                if v not in self.rep.intervals:
                    raise ValueError(f"vertex {v!r} has no interval")
                seen.add(v)
            for a, b in zip(lane, lane[1:]):
                if not self.rep.strictly_before(a, b):
                    raise ValueError(
                        f"lane {index}: {a!r} does not precede {b!r} under ≺"
                    )
        missing = set(self.rep.intervals) - seen
        if missing:
            raise ValueError(f"vertices missing from lanes: {sorted(missing)!r}")

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of lanes."""
        return len(self.lanes)

    def lane_of(self, vertex) -> int:
        """Return the lane index of ``vertex``."""
        for index, lane in enumerate(self.lanes):
            if vertex in lane:
                return index
        raise KeyError(f"vertex {vertex!r} not in any lane")

    def heads(self) -> list:
        """Return the initial vertex of each lane."""
        return [lane[0] for lane in self.lanes]

    def __repr__(self) -> str:
        return f"KLanePartition(lanes={self.width}, n={sum(map(len, self.lanes))})"


def greedy_lane_partition(rep: IntervalRepresentation) -> KLanePartition:
    """Observation 4.3: sweep vertices by left endpoint, reuse free lanes.

    Produces at most ``width(rep)`` lanes: a vertex refused by every open
    lane overlaps the last interval of each, giving ``lanes + 1`` mutually
    overlapping intervals at its left endpoint.
    """
    order = sorted(
        rep.intervals, key=lambda v: (rep.intervals[v][0], rep.intervals[v][1], repr(v))
    )
    lanes: list = []
    lane_end: list = []
    for v in order:
        left, right = rep.intervals[v]
        placed = False
        for index, end in enumerate(lane_end):
            if end < left:
                lanes[index].append(v)
                lane_end[index] = right
                placed = True
                break
        if not placed:
            lanes.append([v])
            lane_end.append(right)
    return KLanePartition(rep, lanes)
