"""Lanewidth (Definition 5.1) and Proposition 5.2.

A graph has lanewidth ``w`` when it can be built from a ``w``-vertex path
``(τ_1, ..., τ_w)`` by ``V-insert(i)`` (add a vertex joined to the lane-i
designated vertex, which it replaces) and ``E-insert(i, j)`` (add an edge
between the designated vertices of lanes ``i`` and ``j``).

Proposition 5.2 makes lanewidth the bridge between Section 4 and
Section 5: a graph has lanewidth ``<= w`` iff it is the completion of some
``w``-lane partition.  :func:`construction_sequence_from_completion`
implements the constructive direction used by the Theorem 1 prover — sort
vertices by ``L_v`` and original edges by ``max(L_u, L_v)``, vertices
first on ties, then emit V-inserts for lane successions and E-inserts for
original edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.completion import CompletionResult
from repro.courcelle.boundary import REAL, VIRTUAL
from repro.graphs import Graph, edge_key


@dataclass
class ConstructionSequence:
    """A lanewidth-``width`` build plan with tagged edges.

    ``ops`` entries:

    * ``("V", lane, new_vertex, tag)`` — V-insert of ``new_vertex`` on
      ``lane``; the edge to the previous designated vertex carries ``tag``;
    * ``("E", lane_i, lane_j, tag)`` — E-insert between two lanes.

    Lanes are 0-based.  Tags are :data:`REAL`/:data:`VIRTUAL` — virtual
    edges exist only in the completion scaffolding of Theorem 1.
    """

    width: int
    initial_vertices: tuple
    initial_edge_tags: tuple = ()
    ops: list = field(default_factory=list)

    def __post_init__(self):
        if self.width < 1:
            raise ValueError("lanewidth must be at least 1")
        if len(self.initial_vertices) != self.width:
            raise ValueError("initial path must have exactly `width` vertices")
        if not self.initial_edge_tags:
            self.initial_edge_tags = tuple([VIRTUAL] * max(0, self.width - 1))
        if len(self.initial_edge_tags) != max(0, self.width - 1):
            raise ValueError("need one tag per initial path edge")

    @property
    def n(self) -> int:
        return len(self.initial_vertices) + sum(
            1 for op in self.ops if op[0] == "V"
        )


def apply_construction(seq: ConstructionSequence) -> Graph:
    """Replay a construction sequence into a tagged graph.

    Raises ``ValueError`` on malformed sequences (duplicate vertices,
    E-insert between identical lanes, duplicate edges).
    """
    graph = Graph(vertices=seq.initial_vertices)
    designated = {i: v for i, v in enumerate(seq.initial_vertices)}
    for (a, b), tag in zip(
        zip(seq.initial_vertices, seq.initial_vertices[1:]), seq.initial_edge_tags
    ):
        graph.add_edge(a, b)
        graph.set_edge_label(a, b, tag)
    for op in seq.ops:
        if op[0] == "V":
            _kind, lane, vertex, tag = op
            if vertex in graph:
                raise ValueError(f"V-insert of existing vertex {vertex!r}")
            anchor = designated[lane]
            graph.add_edge(vertex, anchor)
            graph.set_edge_label(vertex, anchor, tag)
            designated[lane] = vertex
        elif op[0] == "E":
            _kind, lane_i, lane_j, tag = op
            if lane_i == lane_j:
                raise ValueError("E-insert needs two distinct lanes")
            u, v = designated[lane_i], designated[lane_j]
            if graph.has_edge(u, v):
                raise ValueError(f"E-insert duplicates edge {u!r}-{v!r}")
            graph.add_edge(u, v)
            graph.set_edge_label(u, v, tag)
        else:
            raise ValueError(f"unknown op {op!r}")
    return graph


def final_designated(seq: ConstructionSequence) -> dict:
    """Return the designated vertex of each lane after all operations."""
    designated = {i: v for i, v in enumerate(seq.initial_vertices)}
    for op in seq.ops:
        if op[0] == "V":
            designated[op[1]] = op[2]
    return designated


def construction_sequence_from_completion(
    completion: CompletionResult,
) -> ConstructionSequence:
    """Proposition 5.2 (item 2 -> item 1): completion to insert sequence.

    The initial path is the lane-head path (``E2``); each non-head vertex
    becomes a V-insert at time ``L_v`` (its edge is the ``E1`` edge to its
    lane predecessor); each *original* edge becomes an E-insert at time
    ``max(L_u, L_v)``.  Vertices precede edges on ties.  The proof of
    Proposition 5.2 guarantees each E-insert finds its endpoints
    designated; this implementation asserts it.
    """
    partition = completion.lane_partition
    rep = partition.rep
    graph = completion.graph
    lane_of = {}
    predecessor = {}
    for index, lane in enumerate(partition.lanes):
        for pos, v in enumerate(lane):
            lane_of[v] = index
            if pos > 0:
                predecessor[v] = lane[pos - 1]

    heads = partition.heads()
    initial_tags = tuple(
        graph.edge_label(*edge_key(a, b)) for a, b in zip(heads, heads[1:])
    )
    completion_keys = set(completion.e1) | set(completion.e2)

    vertex_events = [
        (rep.left(v), 0, v) for v in graph.vertices() if v not in set(heads)
    ]
    edge_events = []
    for u, v in graph.edges():
        key = edge_key(u, v)
        if key in completion_keys:
            continue  # realized by the initial path or a V-insert
        value = max(rep.left(u), rep.left(v))
        edge_events.append((value, 1, key))
    events = sorted(vertex_events + edge_events, key=lambda t: (t[0], t[1], repr(t[2])))

    designated = {i: v for i, v in enumerate(heads)}
    ops = []
    for _value, kind, payload in events:
        if kind == 0:
            v = payload
            lane = lane_of[v]
            anchor = predecessor[v]
            if designated[lane] != anchor:
                raise AssertionError(
                    f"V-insert anchor mismatch for {v!r}: designated "
                    f"{designated[lane]!r}, lane predecessor {anchor!r}"
                )
            tag = graph.edge_label(*edge_key(v, anchor))
            ops.append(("V", lane, v, tag))
            designated[lane] = v
        else:
            u, v = payload
            lane_u, lane_v = lane_of[u], lane_of[v]
            if designated.get(lane_u) != u or designated.get(lane_v) != v:
                raise AssertionError(
                    f"E-insert endpoints not designated for edge {payload!r}"
                )
            tag = graph.edge_label(u, v)
            ops.append(("E", lane_u, lane_v, tag))
    return ConstructionSequence(
        width=partition.width,
        initial_vertices=tuple(heads),
        initial_edge_tags=initial_tags,
        ops=ops,
    )


def interval_representation_of(seq: ConstructionSequence):
    """Proposition 5.2 (item 1 -> item 2): the time-interval representation.

    Replaying the construction, each vertex's interval is the span of
    operation indices during which it is a designated vertex, extended one
    step past its replacement so V-insert edges overlap too (the paper's
    rep covers the E-insert subgraph only; extending by one covers the
    whole constructed graph at width ``<= seq.width + 1``, witnessing
    ``pathwidth <= seq.width``).
    """
    from repro.pathwidth.interval import IntervalRepresentation

    graph = apply_construction(seq)
    left = {v: 0 for v in seq.initial_vertices}
    right: dict = {}
    time = 0
    designated = {i: v for i, v in enumerate(seq.initial_vertices)}
    for op in seq.ops:
        time += 1
        if op[0] == "V":
            _kind, lane, vertex, _tag = op
            right[designated[lane]] = time  # overlap with the successor
            left[vertex] = time
            designated[lane] = vertex
    final_time = time
    for vertex in designated.values():
        right[vertex] = final_time
    intervals = {v: (left[v], right.get(v, final_time)) for v in graph.vertices()}
    return IntervalRepresentation(graph, intervals)


def random_lanewidth_sequence(
    width: int,
    extra_vertices: int,
    rng: Optional[random.Random] = None,
    edge_probability: float = 0.4,
) -> ConstructionSequence:
    """Return a random native lanewidth-``width`` construction.

    All edges are real: these are the benchmark families where the
    Section 5/6 machinery runs without the Section 4 front end, keeping
    expensive algebras feasible (see DESIGN.md's scope notes).
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    rng = rng or random.Random()
    initial = tuple(range(width))
    seq = ConstructionSequence(
        width=width,
        initial_vertices=initial,
        initial_edge_tags=tuple([REAL] * (width - 1)),
    )
    designated = {i: i for i in range(width)}
    present = {edge_key(a, b) for a, b in zip(initial, initial[1:])}
    next_vertex = width
    while next_vertex < width + extra_vertices:
        if width >= 2 and rng.random() < edge_probability:
            lane_i, lane_j = rng.sample(range(width), 2)
            key = edge_key(designated[lane_i], designated[lane_j])
            if key in present:
                continue
            present.add(key)
            seq.ops.append(("E", lane_i, lane_j, REAL))
        else:
            lane = rng.randrange(width)
            seq.ops.append(("V", lane, next_vertex, REAL))
            present.add(edge_key(designated[lane], next_vertex))
            designated[lane] = next_vertex
            next_vertex += 1
    return seq
