"""The strictly-local Theorem 1 verifier (Lemmas 6.4/6.5 checks).

A vertex sees its identifier, its input state, and the labels of its
incident *real* edges.  From those it

1. reconstructs its virtual ports from the embedded records (the
   ID/rank/path-consistency checks of Section 6.2's "certifying the
   embedding");
2. walks the certificate stacks level by level: at every hierarchy node
   claimed to contain it, it re-derives leaf homomorphism classes from
   scratch (E/P records carry their full constant-size topology) and
   re-applies the composition functions ``f_B``/``f_P`` of
   Proposition 6.1 to check every internal class, verifies terminal
   gluings through identifiers, runs the Proposition 2.2 pointer check
   inside every T-node, and enforces the no-neighbor-outside conditions;
3. accepts iff the root class satisfies the property.

Everything here receives only a :class:`LocalView`; the simulator keeps
the locality boundary honest.

Performance note: the re-derivations of Lemmas 6.4/6.5 — leaf classes,
``f_B`` bridge recompositions, ``f_P`` member folds — are *pure
functions of label content*: every vertex holding edges of the same
hierarchy node replays exactly the same algebra computation on exactly
the same records.  They are therefore memoized per algebra, keyed by the
full record content (success and ``_Reject`` outcomes alike), which
keeps verdicts identical by construction — a vertex learns nothing it
did not already hold in its own view, the locality boundary is
untouched, and adversarial records that fail to hash simply bypass the
cache.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.core.certificates import (
    BasicInfo,
    BLevelRecord,
    EdgeCertificate,
    ELevelRecord,
    PLevelRecord,
    Theorem1Label,
    TLevelRecord,
)
from repro.courcelle.boundary import REAL, VIRTUAL
from repro.pls.model import LocalView
from repro.pls.pointer import verify_pointer_ports


class _Reject(Exception):
    """Internal control flow: any failed check rejects."""


def _require(condition: bool, reason: str = "") -> None:
    if not condition:
        raise _Reject(reason)


# ----------------------------------------------------------------------
# Content-keyed memoization of the pure record re-derivations
# ----------------------------------------------------------------------
#: algebra -> {content key -> (True, value) | (False, reject reason)}.
#: Weakly keyed so dropping an algebra drops its cache; bounded so
#: long audit campaigns over thousands of configurations cannot grow it
#: without limit.
_RECOMPUTE_CACHES: WeakKeyDictionary = WeakKeyDictionary()
_CACHE_LIMIT = 1 << 16


def _cached_recompute(algebra, key, compute):
    """Memoize ``compute()`` under ``key`` in the algebra's cache.

    Both successful values and ``_Reject`` outcomes are cached (the
    functions are deterministic in their record inputs, rejections
    included).  Unhashable inputs — adversarial labels can smuggle
    arbitrary objects into record fields — and non-weakrefable algebras
    fall back to direct computation; any exception other than
    ``_Reject`` is never cached and propagates to the caller's
    malformed-label handling.
    """
    try:
        cache = _RECOMPUTE_CACHES.get(algebra)
        if cache is None:
            cache = {}
            _RECOMPUTE_CACHES[algebra] = cache
    except TypeError:
        return compute()
    try:
        hit = cache.get(key)
    except TypeError:
        return compute()
    if hit is not None:
        ok, value = hit
        if ok:
            return value
        raise _Reject(value)
    if len(cache) >= _CACHE_LIMIT:
        cache.clear()
    try:
        value = compute()
    except _Reject as exc:
        cache[key] = (False, str(exc))
        raise
    cache[key] = (True, value)
    return value


# ----------------------------------------------------------------------
# Recomputation of homomorphism classes from label data (IDs as names)
# ----------------------------------------------------------------------
def _canonical_ids(lanes, in_map: dict, out_map: dict) -> tuple:
    ids = []
    for lane in sorted(lanes):
        for x in (in_map[lane], out_map[lane]):
            if x not in ids:
                ids.append(x)
    return tuple(ids)


def _leaf_state(algebra, record):
    if isinstance(record, ELevelRecord):
        state = algebra.new_vertices(2)
        return algebra.add_edge(state, 0, 1, record.tag)
    if isinstance(record, PLevelRecord):
        state = algebra.new_vertices(len(record.vertex_ids))
        for index, tag in enumerate(record.tags):
            state = algebra.add_edge(state, index, index + 1, tag)
        return state
    raise TypeError("not a leaf record")


def recompute_leaf_state(algebra, record):
    """Recompute an E- or P-leaf's class from its explicit topology."""
    if not isinstance(record, (ELevelRecord, PLevelRecord)):
        raise TypeError("not a leaf record")
    return _cached_recompute(
        algebra, ("leaf", record), lambda: _leaf_state(algebra, record)
    )


def _bridge(algebra, left: BasicInfo, right: BasicInfo, i: int, j: int, tag):
    b1, b2 = left.boundary_ids, right.boundary_ids
    _require(not set(b1) & set(b2), "bridge children share terminals")
    state = algebra.join(left.state, len(b1), right.state, len(b2), ())
    boundary = b1 + b2
    _require(left.out_id(i) is not None and right.out_id(j) is not None,
             "bridge lanes missing")
    a = boundary.index(left.out_id(i))
    b = boundary.index(right.out_id(j))
    state = algebra.add_edge(state, a, b, tag)
    lanes = sorted(set(left.lanes) | set(right.lanes))
    in_map = {l: (left.in_id(l) if left.in_id(l) is not None else right.in_id(l)) for l in lanes}
    out_map = {l: (left.out_id(l) if left.out_id(l) is not None else right.out_id(l)) for l in lanes}
    target = _canonical_ids(lanes, in_map, out_map)
    keep = tuple(boundary.index(x) for x in target)
    if keep != tuple(range(len(boundary))):
        state = algebra.forget(state, len(boundary), keep)
    return (
        state,
        target,
        tuple(sorted(in_map.items())),
        tuple(sorted(out_map.items())),
    )


def recompute_bridge(algebra, left: BasicInfo, right: BasicInfo, i: int, j: int, tag):
    """Re-apply f_B: join two children, add the bridge edge, reorder.

    Returns ``(state, boundary, in_ids, out_ids)`` with the terminal
    maps as lane-sorted tuples — directly comparable to
    ``BasicInfo.in_ids``/``out_ids``.
    """
    return _cached_recompute(
        algebra,
        ("bridge", left, right, i, j, tag),
        lambda: _bridge(algebra, left, right, i, j, tag),
    )


def _parent_fold(algebra, member: BasicInfo, child_subtrees: tuple):
    state = member.state
    boundary = member.boundary_ids
    in_map = {l: member.in_id(l) for l in member.lanes}
    out_map = {l: member.out_id(l) for l in member.lanes}
    for child in child_subtrees:
        _require(set(child.lanes) <= set(member.lanes), "child lanes exceed member")
        identify = []
        glued_ids = set()
        for lane in child.lanes:
            glue_id = child.in_id(lane)
            _require(glue_id == out_map[lane], f"gluing mismatch on lane {lane}")
            identify.append(
                (boundary.index(out_map[lane]), child.boundary_ids.index(glue_id))
            )
            glued_ids.add(glue_id)
        state = algebra.join(
            state, len(boundary), child.state, len(child.boundary_ids), tuple(identify)
        )
        boundary = boundary + tuple(
            x for x in child.boundary_ids if x not in glued_ids
        )
        for lane in child.lanes:
            out_map[lane] = child.out_id(lane)
        target = _canonical_ids(member.lanes, in_map, out_map)
        keep = tuple(boundary.index(x) for x in target)
        if keep != tuple(range(len(boundary))):
            state = algebra.forget(state, len(boundary), keep)
        boundary = target
    return (
        state,
        boundary,
        tuple(sorted(in_map.items())),
        tuple(sorted(out_map.items())),
    )


def recompute_parent_fold(algebra, member: BasicInfo, child_subtrees: tuple):
    """Re-apply the f_P fold: glue every child subtree onto the member.

    Returns ``(state, boundary, in_ids, out_ids)`` with the terminal
    maps as lane-sorted tuples — directly comparable to
    ``BasicInfo.in_ids``/``out_ids``.
    """
    return _cached_recompute(
        algebra,
        ("fold", member, child_subtrees),
        lambda: _parent_fold(algebra, member, child_subtrees),
    )


# ----------------------------------------------------------------------
# Virtual-port reconstruction (the embedding checks)
# ----------------------------------------------------------------------
def _reconstruct_ports(view: LocalView) -> list:
    """Return the G' ports of this vertex: (tag, EdgeCertificate)."""
    ports = []
    groups: dict = {}
    for port in view.ports:
        label = port.certificate
        _require(isinstance(label, Theorem1Label), "malformed physical label")
        _require(
            isinstance(label.certificate, EdgeCertificate), "missing certificate"
        )
        ports.append((REAL, label.certificate))
        for record in label.embedded:
            key = (record.u_id, record.v_id, record.payload)
            groups.setdefault(key, []).append((record.forward, record.backward))
    for (u_id, v_id, payload), hits in groups.items():
        totals = {f + b for f, b in hits}
        _require(len(totals) == 1, "inconsistent path length")
        total = totals.pop()
        _require(all(1 <= f <= total - 1 for f, _b in hits), "rank out of range")
        if view.identifier == u_id:
            _require(len(hits) == 1 and hits[0][0] == 1, "bad path start")
            ports.append((VIRTUAL, payload))
        elif view.identifier == v_id:
            _require(len(hits) == 1 and hits[0][1] == 1, "bad path end")
            ports.append((VIRTUAL, payload))
        else:
            _require(len(hits) == 2, "intermediate vertex needs two path edges")
            (f1, _), (f2, _) = hits
            _require(abs(f1 - f2) == 1, "path ranks not consecutive")
    return ports


# ----------------------------------------------------------------------
# The hierarchy walk
# ----------------------------------------------------------------------
def _check_level(view, algebra, ports, depth, t_in_context) -> None:
    """Verify one node's claims at this vertex; recurse into sub-levels.

    ``ports``: (tag, cert) pairs whose stacks agree above ``depth`` and
    whose records at ``depth`` name the same node.  ``t_in_context`` is
    the set of (lane, id) in-terminal claims of the enclosing T-node
    (used by the anchored-member rule), or ``None`` at the root.
    """
    records = [cert.stack[depth] for _tag, cert in ports]
    first = records[0]
    if isinstance(first, TLevelRecord):
        _require(
            all(
                isinstance(r, TLevelRecord)
                and r.info == first.info
                and r.root_member_id == first.root_member_id
                for r in records
            ),
            "inconsistent T-node records",
        )
        _require(
            verify_pointer_ports(view.identifier, [r.pointer for r in records]),
            "pointer check failed",
        )
        # Group by member.
        member_groups: dict = {}
        for port, record in zip(ports, records):
            member_groups.setdefault(record.member_info.node_id, []).append(
                (port, record)
            )
        subtree_by_member = {}
        for member_id, entries in member_groups.items():
            base = entries[0][1]
            _require(
                all(
                    r.member_info == base.member_info
                    and r.member_subtree == base.member_subtree
                    and r.child_subtrees == base.child_subtrees
                    for _p, r in entries
                ),
                "inconsistent member records",
            )
            subtree_by_member[member_id] = base
            # f_P fold recomputation (memoized: pure in the records).
            state, _boundary, in_ids, out_ids = recompute_parent_fold(
                algebra, base.member_info, base.child_subtrees
            )
            _require(state == base.member_subtree.state, "member fold class mismatch")
            _require(
                in_ids == base.member_subtree.in_ids,
                "member fold in-terminals mismatch",
            )
            _require(
                out_ids == base.member_subtree.out_ids,
                "member fold out-terminals mismatch",
            )
        # Out-terminal materialization (the paper's "each out-terminal of
        # G' can locally check if it is the right in-terminal of the right
        # graph Tree-merge(T_{G_i})"): if a member record claims a child
        # subtree glued at this vertex, edges of that subtree's root member
        # must actually be incident here.
        me = view.identifier
        for member_id, entries in member_groups.items():
            base = entries[0][1]
            for claimed in base.child_subtrees:
                if me not in {x for _l, x in claimed.in_ids}:
                    continue
                _require(
                    any(
                        other[0][1].member_subtree == claimed
                        for other_id, other in member_groups.items()
                        if other_id != member_id
                    ),
                    "claimed child subtree has no edges at its glue vertex",
                )
        # Anchored-member chain rule.
        non_anchored = 0
        for member_id, entries in member_groups.items():
            base = entries[0][1]
            anchored_lanes = [
                lane for lane, x in base.member_subtree.in_ids if x == me
            ]
            if not anchored_lanes:
                non_anchored += 1
                continue
            for lane in anchored_lanes:
                has_parent = any(
                    base.member_subtree in other[0][1].child_subtrees
                    for other_id, other in member_groups.items()
                    if other_id != member_id
                )
                is_t_in = (lane, me) in first.info.in_ids
                _require(has_parent or is_t_in, "dangling member gluing")
        _require(non_anchored <= 1, "vertex interior to two members")
        # The T-node's own basic info must match its root member's subtree
        # (checkable whenever this vertex holds root-member edges).
        for member_id, entries in member_groups.items():
            base = entries[0][1]
            if base.member_info.node_id == first.root_member_id:
                _require(
                    base.member_subtree.state == first.info.state
                    and base.member_subtree.in_ids == first.info.in_ids
                    and base.member_subtree.out_ids == first.info.out_ids
                    and base.member_subtree.lanes == first.info.lanes,
                    "T-node info does not match root member subtree",
                )
        # Recurse into each member.
        for member_id, entries in member_groups.items():
            base = entries[0][1]
            sub_ports = [p for p, _r in entries]
            for _tag, cert in sub_ports:
                _require(len(cert.stack) > depth + 1, "truncated stack in member")
                _require(
                    cert.stack[depth + 1].info == base.member_info,
                    "stack does not continue into its member",
                )
            _check_level(
                view, algebra, sub_ports, depth + 1, set(first.info.in_ids)
            )
        return

    if isinstance(first, BLevelRecord):
        _require(
            all(
                isinstance(r, BLevelRecord)
                and r.info == first.info
                and r.left == first.left
                and r.right == first.right
                and r.bridge == first.bridge
                and r.bridge_tag == first.bridge_tag
                for r in records
            ),
            "inconsistent B-node records",
        )
        i, j = first.bridge
        state, _boundary, in_ids, out_ids = recompute_bridge(
            algebra, first.left, first.right, i, j, first.bridge_tag
        )
        _require(state == first.info.state, "bridge class mismatch")
        _require(
            in_ids == first.info.in_ids and out_ids == first.info.out_ids,
            "bridge terminals mismatch",
        )
        for child in (first.left, first.right):
            if child.kind == "V":
                _require(
                    child.in_ids == child.out_ids and len(child.lanes) == 1,
                    "malformed V-node info",
                )
                _require(
                    child.state == algebra.new_vertices(1), "V-node class mismatch"
                )
        sides: dict = {}
        for port, record in zip(ports, records):
            _require(record.side in (-1, 0, 1), "invalid bridge side marker")
            sides.setdefault(record.side, []).append((port, record))
        _require(not (0 in sides and 1 in sides), "vertex on both bridge sides")
        me = view.identifier
        if me in (first.left.out_id(i), first.right.out_id(j)):
            # A bridge endpoint must actually hold the bridge edge
            # ("the unique edge between G1 and G2", Lemma 6.5).
            _require(-1 in sides, "bridge endpoint missing the bridge edge")
        if -1 in sides:
            _require(len(sides[-1]) == 1, "duplicated bridge edge")
            (tag, cert), record = sides[-1][0]
            _require(len(cert.stack) == depth + 1, "bridge edge stack too deep")
            _require(tag == first.bridge_tag, "bridge tag mismatch")
            endpoints = {first.left.out_id(i), first.right.out_id(j)}
            _require(me in endpoints, "bridge endpoint id mismatch")
        for side, child in ((0, first.left), (1, first.right)):
            if side not in sides:
                continue
            _require(child.kind == "T", "edges inside an edgeless child")
            sub_ports = [p for p, _r in sides[side]]
            for _tag, cert in sub_ports:
                _require(len(cert.stack) > depth + 1, "truncated stack in B child")
                _require(
                    isinstance(cert.stack[depth + 1], TLevelRecord)
                    and cert.stack[depth + 1].info == child,
                    "stack does not continue into bridge child",
                )
            _check_level(view, algebra, sub_ports, depth + 1, None)
        return

    if isinstance(first, ELevelRecord):
        _require(len(ports) == 1, "E-node with several incident edges")
        tag, cert = ports[0]
        _require(len(cert.stack) == depth + 1, "E-node is a leaf")
        _require(tag == first.tag, "E-node tag mismatch")
        me = view.identifier
        _require(me in (first.in_id, first.out_id), "E-node endpoint mismatch")
        _require(first.in_id != first.out_id, "degenerate E-node")
        lane = first.info.lanes[0]
        _require(len(first.info.lanes) == 1, "E-node with several lanes")
        _require(
            first.info.in_ids == ((lane, first.in_id),)
            and first.info.out_ids == ((lane, first.out_id),),
            "E-node terminal mismatch",
        )
        return

    if isinstance(first, PLevelRecord):
        base = first
        _require(
            all(
                isinstance(r, PLevelRecord)
                and r.info == base.info
                and r.vertex_ids == base.vertex_ids
                and r.tags == base.tags
                for r in records
            ),
            "inconsistent P-node records",
        )
        ids = base.vertex_ids
        _require(len(ids) == len(set(ids)), "P-node repeats a vertex")
        _require(len(base.tags) == len(ids) - 1, "P-node tag count")
        me = view.identifier
        _require(me in ids, "vertex not on the initial path")
        t = ids.index(me)
        expected = set()
        if t > 0:
            expected.add(t - 1)
        if t < len(ids) - 1:
            expected.add(t)
        positions = sorted(r.position for r in records)
        _require(positions == sorted(expected), "P-node incident positions wrong")
        for (tag, cert), record in zip(ports, records):
            _require(len(cert.stack) == depth + 1, "P-node is a leaf")
            _require(tag == base.tags[record.position], "P-node tag mismatch")
        lanes = base.info.lanes
        _require(len(lanes) == len(ids), "P-node lane count mismatch")
        _require(
            base.info.in_ids == tuple(zip(lanes, ids))
            and base.info.out_ids == tuple(zip(lanes, ids)),
            "P-node terminal mismatch",
        )
        return

    raise _Reject("unknown record type")


def verify_theorem1(view: LocalView, algebra, max_width: int) -> bool:
    """Run the full local verification for one vertex."""
    try:
        ports = _reconstruct_ports(view)
        _require(bool(ports), "isolated vertex cannot be certified")
        for _tag, cert in ports:
            _require(
                isinstance(cert, EdgeCertificate) and len(cert.stack) >= 1,
                "empty certificate",
            )
        roots = {cert.stack[0].info for _tag, cert in ports if isinstance(cert.stack[0], TLevelRecord)}
        _require(
            len(roots) == 1 and all(isinstance(c.stack[0], TLevelRecord) for _t, c in ports),
            "inconsistent root records",
        )
        root_info = roots.pop()
        width = len(root_info.lanes)
        _require(1 <= width <= max_width, "lane count out of range")
        _require(root_info.lanes == tuple(range(width)), "root lanes not canonical")
        _require(
            algebra.accepts(root_info.state, len(root_info.boundary_ids)),
            "property rejected at the root class",
        )
        # Leaf class recomputation for E/P records anywhere in the stacks.
        for _tag, cert in ports:
            leaf = cert.stack[-1]
            if isinstance(leaf, (ELevelRecord, PLevelRecord)):
                _require(
                    recompute_leaf_state(algebra, leaf) == leaf.info.state,
                    "leaf class mismatch",
                )
        _check_level(view, algebra, ports, 0, None)
        return True
    except _Reject:
        return False
    except Exception:
        return False  # malformed labels reject (soundness posture)
