"""k-lane graphs and their merges (Definitions 5.3-5.4) — reference form.

These are *explicit* graph-level semantics of Bridge-merge, Parent-merge
and Tree-merge, used to validate the hierarchy builder of Proposition 5.6
and to state Observation 5.5's invariants in executable form.  The
certification pipeline itself works on :class:`HierarchyNode` summaries;
agreement between the two is asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs import Graph


@dataclass
class KLaneGraph:
    """A graph with a lane set and in/out terminals per lane (Def 5.3)."""

    graph: Graph
    lanes: frozenset
    t_in: dict  # lane -> vertex
    t_out: dict  # lane -> vertex

    def __post_init__(self):
        if not self.lanes:
            raise ValueError("a k-lane graph needs a non-empty lane set")
        for mapping, name in ((self.t_in, "in"), (self.t_out, "out")):
            if set(mapping) != set(self.lanes):
                raise ValueError(f"{name}-terminals must cover the lane set")
            values = list(mapping.values())
            if len(set(values)) != len(values):
                raise ValueError(f"{name}-terminals must be injective")
            for v in values:
                if v not in self.graph:
                    raise ValueError(f"{name}-terminal {v!r} not in graph")


def bridge_merge(g1: KLaneGraph, g2: KLaneGraph, i: int, j: int, tag=None) -> KLaneGraph:
    """Bridge-merge (Section 5.2): disjoint lane sets, one new edge."""
    if g1.lanes & g2.lanes:
        raise ValueError("Bridge-merge requires disjoint lane sets")
    if i not in g1.lanes or j not in g2.lanes:
        raise ValueError("bridge lanes must belong to the respective graphs")
    merged = g1.graph.disjoint_union(g2.graph)
    u, v = g1.t_out[i], g2.t_out[j]
    merged.add_edge(u, v)
    if tag is not None:
        merged.set_edge_label(u, v, tag)
    return KLaneGraph(
        graph=merged,
        lanes=g1.lanes | g2.lanes,
        t_in={**g1.t_in, **g2.t_in},
        t_out={**g1.t_out, **g2.t_out},
    )


def parent_merge(child: KLaneGraph, parent: KLaneGraph) -> KLaneGraph:
    """Parent-merge (Section 5.2): glue child in-terminals onto parent
    out-terminals lane-wise.

    The two graphs share exactly the glued vertices by name (the
    construction of Proposition 5.6 builds them that way); edge sets must
    stay disjoint.
    """
    if not child.lanes <= parent.lanes:
        raise ValueError("Parent-merge requires T(child) ⊆ T(parent)")
    shared = set(child.graph.vertices()) & set(parent.graph.vertices())
    glue_targets = {child.t_in[i] for i in child.lanes}
    expected = {parent.t_out[i] for i in child.lanes}
    if glue_targets != expected or shared != glue_targets:
        raise ValueError(
            "child and parent must share exactly the glued terminals "
            f"(shared {sorted(map(repr, shared))})"
        )
    for i in child.lanes:
        if child.t_in[i] != parent.t_out[i]:
            raise ValueError(f"lane {i}: in-terminal does not meet out-terminal")
    overlap_edges = set(child.graph.edges()) & set(parent.graph.edges())
    if overlap_edges:
        raise ValueError("Parent-merge must not identify edges")
    merged = parent.graph.copy()
    for v in child.graph.vertices():
        merged.add_vertex(v)
    for u, v in child.graph.edges():
        merged.add_edge(u, v)
        label = child.graph.edge_label(u, v)
        if label is not None:
            merged.set_edge_label(u, v, label)
    t_out = dict(parent.t_out)
    for i in child.lanes:
        t_out[i] = child.t_out[i]
    return KLaneGraph(
        graph=merged, lanes=parent.lanes, t_in=dict(parent.t_in), t_out=t_out
    )


def tree_merge(members: list, parent_of: dict, root_index: int) -> KLaneGraph:
    """Tree-merge (Section 5.3): contract all parent-child pairs.

    ``members`` is a list of :class:`KLaneGraph`; ``parent_of`` maps a
    member index to its parent index (``None`` for the root).  Children of
    one parent must have pairwise disjoint lane sets, each a subset of the
    parent's (the Tree-merge side conditions).  Parent-merge associativity
    (noted after the definition) lets us contract bottom-up.
    """
    children: dict = {index: [] for index in range(len(members))}
    for index, parent in parent_of.items():
        if parent is not None:
            children[parent].append(index)
    for parent, kids in children.items():
        lanes_seen: set = set()
        for kid in kids:
            if members[kid].lanes & lanes_seen:
                raise ValueError("siblings must use disjoint lanes")
            lanes_seen |= members[kid].lanes
            if not members[kid].lanes <= members[parent].lanes:
                raise ValueError("child lanes must be a subset of parent lanes")

    def contract(index: int) -> KLaneGraph:
        result = members[index]
        for kid in sorted(children[index]):
            result = parent_merge(contract(kid), result)
        return result

    return contract(root_index)
