"""Proposition 4.6: completing a k-lane partition with low congestion.

Given a width-``k`` interval representation of a connected graph, the
recursive construction below produces a ``w``-lane partition with
``w <= f(k)`` whose weak completion embeds into ``G`` with congestion at
most ``g(k)`` (and the completion with at most ``h(k)``), where

    f(1) = 1,  f(k) = 2 + 2(k-1) f(k-1)
    g(1) = 0,  g(k) = 2 + g(k-1) + 2k f(k-1)
    h(k) = g(k) + f(k) - 1.

The implementation follows the proof verbatim:

* pick ``v_st``/``v_ed`` extremal for L/R, a ``v_st``–``v_ed`` path ``P``,
  and the greedy jump sequence ``S`` along it (Observations 4.7/4.8 make
  the odd/even subsequences ``S1``/``S2`` valid lanes);
* classify the components of ``G - S`` into ``k - 1`` interval-disjoint
  classes (Lemma 4.10), split each class by adjacency to ``S1`` vs ``S2``,
  and recurse (Lemma 4.11 bounds component width by ``k - 1``);
* assemble lanes ``S1``, ``S2``, and one lane per (class, side, recursive
  lane index), and embed the lane edges as in Cases 1, 2.1, and 2.2 of
  the proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.embedding import Embedding
from repro.core.lanes import KLanePartition, greedy_lane_partition
from repro.graphs import Graph, edge_key
from repro.pathwidth.interval import IntervalRepresentation


def f_bound(k: int) -> int:
    """The lane-count bound f(k) of Section 4.2."""
    if k < 1:
        raise ValueError("width must be at least 1")
    if k == 1:
        return 1
    return 2 + 2 * (k - 1) * f_bound(k - 1)


def g_bound(k: int) -> int:
    """The weak-completion congestion bound g(k) of Section 4.2."""
    if k < 1:
        raise ValueError("width must be at least 1")
    if k == 1:
        return 0
    return 2 + g_bound(k - 1) + 2 * k * f_bound(k - 1)


def h_bound(k: int) -> int:
    """The completion congestion bound h(k) = g(k) + f(k) - 1."""
    return g_bound(k) + f_bound(k) - 1


@dataclass
class LanePartitionResult:
    """Lanes plus the embeddings of Proposition 4.6."""

    partition: KLanePartition
    weak_embedding: Embedding  # paths for E1 (lane-internal) edges
    head_embedding: Embedding  # paths for E2 (lane-head) edges

    def full_embedding(self) -> Embedding:
        """Return the union embedding for the (strong) completion."""
        return self.weak_embedding.merged_with(self.head_embedding)


def build_lane_partition(
    graph: Graph, rep: IntervalRepresentation
) -> LanePartitionResult:
    """Run the Proposition 4.6 construction on a connected graph."""
    if graph.n == 0:
        raise ValueError("graph must be non-empty")
    if not graph.is_connected():
        raise ValueError("Proposition 4.6 requires a connected graph")

    lanes, paths = _partition(graph, rep)
    partition = KLanePartition(rep, lanes)
    weak = Embedding(graph)
    for key, path in paths.items():
        if len(path) >= 2:
            weak.add_path(key, path)

    # E2: connect consecutive lane heads with arbitrary (shortest) paths —
    # the "second statement" of Proposition 4.6.
    head = Embedding(graph)
    heads = partition.heads()
    for a, b in zip(heads, heads[1:]):
        if graph.has_edge(a, b):
            continue  # already a real edge; nothing to embed
        head.add_path(edge_key(a, b), graph.shortest_path(a, b))
    return LanePartitionResult(partition, weak, head)


# ----------------------------------------------------------------------
# The recursion
# ----------------------------------------------------------------------
def _partition(graph: Graph, rep: IntervalRepresentation):
    """Return ``(lanes, e1_paths)`` for one connected graph.

    ``e1_paths`` maps each lane-internal consecutive pair (that is not
    already an edge of ``graph``) to its embedding path.  Pairs that are
    real edges get the trivial two-vertex path.
    """
    if graph.n == 1:
        return [graph.vertices()], {}

    # --- the jump sequence S along a v_st -> v_ed path ----------------
    v_st = rep.argmin_left()
    v_ed = rep.argmax_right()
    spine = graph.shortest_path(v_st, v_ed)
    position = {v: i for i, v in enumerate(spine)}
    r_ed = rep.right(v_ed)

    jumps = [v_st]
    while rep.right(jumps[-1]) < r_ed:
        current = jumps[-1]
        candidates = [
            u
            for u in spine[position[current] + 1 :]
            if rep.overlaps(u, current)
        ]
        if not candidates:
            raise AssertionError(
                "jump sequence stuck — the path would be disconnected"
            )
        nxt = max(candidates, key=lambda u: (rep.right(u), -position[u]))
        jumps.append(nxt)

    s1 = jumps[0::2]
    s2 = jumps[1::2]
    jump_set = set(jumps)

    lanes: list = [s1]
    if s2:
        lanes.append(s2)
    paths: dict = {}

    # Case 1: lane edges inside S1/S2 embed along subpaths of the spine.
    for lane in (s1, s2):
        for a, b in zip(lane, lane[1:]):
            paths[edge_key(a, b)] = spine[position[a] : position[b] + 1]

    # --- components of G - S, classified (Lemma 4.10) ------------------
    rest = [v for v in graph.vertices() if v not in jump_set]
    if not rest:
        return [lane for lane in lanes if lane], paths
    remainder = graph.induced_subgraph(rest)
    components = remainder.connected_components()

    # Greedy interval-disjoint classes over the component union intervals.
    comp_info = []
    for comp in components:
        left, right = rep.union_interval(comp)
        comp_info.append((left, right, comp))
    comp_info.sort(key=lambda t: (t[0], t[1]))
    class_of: dict = {}
    class_end: list = []
    for left, right, comp in comp_info:
        target = None
        for index, end in enumerate(class_end):
            if end < left:
                target = index
                break
        if target is None:
            class_end.append(right)
            target = len(class_end) - 1
        else:
            class_end[target] = right
        class_of[tuple(comp)] = target

    # Side split: a component adjacent to S1 goes to side 0, else side 1.
    s1_set, s2_set = set(s1), set(s2)

    def side_of(comp) -> int:
        for v in comp:
            if not s1_set.isdisjoint(graph.neighbors_sorted(v)):
                return 0
        for v in comp:
            if not s2_set.isdisjoint(graph.neighbors_sorted(v)):
                return 1
        raise AssertionError("component not adjacent to S — graph disconnected?")

    # Designated connection edge (u*_C, v*_C) from each component to its side.
    def connector(comp, side_set) -> tuple:
        for v in sorted(comp):
            for u in graph.neighbors_sorted(v):  # sorted: first hit is min
                if u in side_set:
                    return (v, u)
        raise AssertionError("no connector edge found")

    # --- recurse and assemble ------------------------------------------
    buckets: dict = {}
    for left, right, comp in comp_info:
        cls = class_of[tuple(comp)]
        side = side_of(comp)
        sub = graph.induced_subgraph(comp)
        sub_rep = rep.restricted_to(comp)
        sub_lanes, sub_paths = _partition(sub, sub_rep)
        paths.update(sub_paths)  # Case 2.1: recursive embeddings
        side_set = s1_set if side == 0 else s2_set
        u_star, v_star = connector(comp, side_set)
        buckets.setdefault((cls, side), []).append(
            {
                "comp": comp,
                "lanes": sub_lanes,
                "graph": sub,
                "u_star": u_star,
                "v_star": v_star,
            }
        )

    for (cls, side) in sorted(buckets):
        entries = buckets[(cls, side)]  # already in ≺ order of I_C
        max_lanes = max(len(entry["lanes"]) for entry in entries)
        for lane_index in range(max_lanes):
            assembled: list = []
            previous = None  # (entry, last vertex of its lane_index lane)
            for entry in entries:
                if lane_index >= len(entry["lanes"]):
                    continue
                lane = entry["lanes"][lane_index]
                if previous is not None:
                    # Case 2.2: embed the cross-component lane edge.
                    x_entry, x = previous
                    y = lane[0]
                    key = edge_key(x, y)
                    if not graph.has_edge(x, y):
                        path = _cross_component_path(
                            graph, spine, position, x_entry, x, entry, y
                        )
                        paths[key] = path
                    else:
                        paths[key] = [x, y]
                assembled.extend(lane)
                previous = (entry, lane[-1])
            if assembled:
                lanes.append(assembled)

    return [lane for lane in lanes if lane], paths


def _cross_component_path(graph, spine, position, x_entry, x, y_entry, y):
    """Case 2.2: x -> u*_C -> v*_C -> (spine) -> v*_C' -> u*_C' -> y.

    The concatenation is a priori a *walk* — the spine may revisit
    component vertices — so it is shortcut into a simple path, which only
    lowers congestion relative to the proof's accounting.
    """
    first_leg = x_entry["graph"].shortest_path(x, x_entry["u_star"])
    last_leg = y_entry["graph"].shortest_path(y_entry["u_star"], y)
    va, vb = x_entry["v_star"], y_entry["v_star"]
    pa, pb = position[va], position[vb]
    if pa <= pb:
        middle = spine[pa : pb + 1]
    else:
        middle = list(reversed(spine[pb : pa + 1]))
    walk = first_leg + middle + last_leg
    return _shortcut_walk(walk)


def _shortcut_walk(walk: list) -> list:
    """Turn a walk into a simple path by excising loops at revisits."""
    cleaned: list = []
    index_of: dict = {}
    for v in walk:
        if v == (cleaned[-1] if cleaned else None):
            continue  # consecutive duplicate (leg endpoints coincide)
        if v in index_of:
            cut = index_of[v]
            for removed in cleaned[cut + 1 :]:
                del index_of[removed]
            cleaned = cleaned[: cut + 1]
        else:
            index_of[v] = len(cleaned)
            cleaned.append(v)
    return cleaned
