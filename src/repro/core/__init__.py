"""The paper's primary contribution.

Section 4: lane partitions of interval representations, completions, and
low-congestion embeddings (Proposition 4.6).  Section 5: lanewidth,
k-lane graphs, Bridge/Parent/Tree-merge, hierarchical decompositions of
bounded depth (Observation 5.5), and the T-node construction
(Proposition 5.6).  Section 6: O(log n)-bit certification of k-lane
recursive graphs (Lemmas 6.4/6.5) and the Theorem 1 scheme.

The schemes here are the stable legacy entry points; their provers
delegate to the staged pipeline in :mod:`repro.api`, which is the
preferred surface for new code (structured reports, per-stage timings,
and cross-property structural caching via ``CertificationSession``).
"""

from repro.core.lanes import KLanePartition, greedy_lane_partition
from repro.core.completion import CompletionResult, build_completion
from repro.core.embedding import Embedding
from repro.core.lane_partition import f_bound, g_bound, h_bound, build_lane_partition
from repro.core.lanewidth import (
    ConstructionSequence,
    apply_construction,
    construction_sequence_from_completion,
    random_lanewidth_sequence,
)
from repro.core.klane_graph import KLaneGraph, bridge_merge, parent_merge, tree_merge
from repro.core.hierarchy import (
    HierarchyNode,
    evaluate_hierarchy,
    hierarchy_depth,
    validate_hierarchy,
)
from repro.core.construction import build_hierarchy
from repro.core.scheme import LanewidthScheme, Theorem1Scheme, certify_lanewidth_graph

__all__ = [
    "KLanePartition",
    "greedy_lane_partition",
    "CompletionResult",
    "build_completion",
    "Embedding",
    "f_bound",
    "g_bound",
    "h_bound",
    "build_lane_partition",
    "ConstructionSequence",
    "apply_construction",
    "construction_sequence_from_completion",
    "random_lanewidth_sequence",
    "KLaneGraph",
    "bridge_merge",
    "parent_merge",
    "tree_merge",
    "HierarchyNode",
    "evaluate_hierarchy",
    "hierarchy_depth",
    "validate_hierarchy",
    "build_hierarchy",
    "LanewidthScheme",
    "Theorem1Scheme",
    "certify_lanewidth_graph",
]
