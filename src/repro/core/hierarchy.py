"""Hierarchical decompositions: the five node types and their evaluation.

Section 5.3 builds every lanewidth-``k`` graph as a **T-node** whose
hierarchical decomposition ``H`` has the two properties that enable
O(log n) certification: every root-to-leaf path has at most ``2k`` nodes
(Observation 5.5), and every node's subgraph is connected.

``H``'s structure here:

* ``V``/``E``/``P`` leaves own a vertex, an edge, and the initial path;
* a ``B`` node owns its bridge edge and has exactly two children (each a
  V- or T-node);
* a ``T`` node owns no edges; its children are *all* members of its
  internal tree (the paper's convention), whose parent-child relations
  are kept in ``member_parent``.

:func:`evaluate_hierarchy` runs any homomorphism-class algebra bottom-up
(Proposition 6.1): Bridge-merge is a boundary join plus one edge;
Parent-merge is a join gluing same-named terminals followed by a forget
that retires merged terminals — exactly the paper's 3k-terminal detour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.klane_graph import KLaneGraph, bridge_merge, parent_merge
from repro.courcelle.algebra import BoundedAlgebra
from repro.graphs import Graph, edge_key


@dataclass
class HierarchyNode:
    """One node of the hierarchical decomposition."""

    kind: str  # 'V' | 'E' | 'P' | 'B' | 'T'
    lanes: tuple  # sorted lane numbers
    t_in: dict  # lane -> vertex
    t_out: dict  # lane -> vertex
    children: list = field(default_factory=list)
    # V-node:
    vertex: object = None
    # E-node:
    edge: Optional[tuple] = None  # (in_vertex, out_vertex)
    edge_tag: object = None
    # P-node:
    path_vertices: tuple = ()
    path_tags: tuple = ()
    # B-node:
    bridge: Optional[tuple] = None  # (lane_i, lane_j)
    bridge_tag: object = None
    # T-node internals: children == members; member_parent maps child list
    # positions to parent positions (None for the internal root).
    member_parent: dict = field(default_factory=dict)
    root_member: int = 0
    # assigned by number_nodes():
    node_id: int = -1

    # ------------------------------------------------------------------
    def owned_edges(self) -> list:
        """Return the edges this node itself contributes (with tags)."""
        if self.kind == "E":
            return [(edge_key(*self.edge), self.edge_tag)]
        if self.kind == "P":
            return [
                (edge_key(a, b), tag)
                for (a, b), tag in zip(
                    zip(self.path_vertices, self.path_vertices[1:]), self.path_tags
                )
            ]
        if self.kind == "B":
            left, right = self.children
            i, j = self.bridge
            return [(edge_key(left.t_out[i], right.t_out[j]), self.bridge_tag)]
        return []

    def all_edges(self) -> list:
        """Return every (edge, tag) in this node's subgraph."""
        edges = list(self.owned_edges())
        for child in self.children:
            edges.extend(child.all_edges())
        return edges

    def all_vertices(self) -> set:
        """Return every vertex in this node's subgraph."""
        if self.kind == "V":
            return {self.vertex}
        if self.kind == "E":
            return set(self.edge)
        if self.kind == "P":
            return set(self.path_vertices)
        result: set = set()
        for child in self.children:
            result |= child.all_vertices()
        return result

    def walk(self):
        """Yield every node of the hierarchy, root first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"HierarchyNode({self.kind}, lanes={list(self.lanes)}, "
            f"children={len(self.children)})"
        )


def number_nodes(root: HierarchyNode) -> None:
    """Assign serial ``node_id``s (prover-side grouping hints in labels)."""
    for serial, node in enumerate(root.walk()):
        node.node_id = serial


def hierarchy_depth(root: HierarchyNode) -> int:
    """Return the max number of nodes on a root-to-leaf path (Obs 5.5)."""
    if not root.children:
        return 1
    return 1 + max(hierarchy_depth(child) for child in root.children)


def validate_hierarchy(root: HierarchyNode, graph: Graph) -> None:
    """Check the hierarchy is a faithful decomposition of ``graph``.

    Edge sets of all nodes must partition E(graph); terminal maps must be
    consistent with the explicit Bridge/Parent/Tree-merge semantics; and
    the Observation 5.5 depth bound must hold.
    """
    edges = root.all_edges()
    keys = [key for key, _tag in edges]
    if len(keys) != len(set(keys)):
        raise ValueError("hierarchy nodes own overlapping edge sets")
    if set(keys) != set(graph.edges()):
        raise ValueError("hierarchy edges do not match the graph")
    for key, tag in edges:
        if graph.edge_label(*key) != tag:
            raise ValueError(f"tag mismatch on edge {key!r}")
    if root.all_vertices() != set(graph.vertices()):
        raise ValueError("hierarchy vertices do not match the graph")
    width = len(root.lanes)
    if hierarchy_depth(root) > 2 * width:
        raise ValueError("Observation 5.5 depth bound violated")
    to_klane(root)  # raises on structural inconsistencies


def to_klane(node: HierarchyNode) -> KLaneGraph:
    """Materialize the node's k-lane graph via the reference merges."""
    if node.kind == "V":
        g = Graph(vertices=[node.vertex])
        lane = node.lanes[0]
        return KLaneGraph(g, frozenset(node.lanes), {lane: node.vertex}, {lane: node.vertex})
    if node.kind == "E":
        u, v = node.edge
        g = Graph(edges=[(u, v)])
        g.set_edge_label(u, v, node.edge_tag)
        lane = node.lanes[0]
        return KLaneGraph(g, frozenset(node.lanes), {lane: u}, {lane: v})
    if node.kind == "P":
        g = Graph(vertices=node.path_vertices)
        for (a, b), tag in zip(
            zip(node.path_vertices, node.path_vertices[1:]), node.path_tags
        ):
            g.add_edge(a, b)
            g.set_edge_label(a, b, tag)
        terminals = {lane: v for lane, v in zip(node.lanes, node.path_vertices)}
        return KLaneGraph(g, frozenset(node.lanes), dict(terminals), dict(terminals))
    if node.kind == "B":
        left, right = node.children
        i, j = node.bridge
        return bridge_merge(to_klane(left), to_klane(right), i, j, node.bridge_tag)
    if node.kind == "T":
        members = [to_klane(member) for member in node.children]
        return _tree_contract(node, members)
    raise ValueError(f"unknown node kind {node.kind!r}")


def _tree_contract(node: HierarchyNode, members: list) -> KLaneGraph:
    children: dict = {index: [] for index in range(len(members))}
    for index, parent in node.member_parent.items():
        if parent is not None:
            children[parent].append(index)

    def contract(index: int) -> KLaneGraph:
        result = members[index]
        for kid in sorted(children[index]):
            result = parent_merge(contract(kid), result)
        return result

    return contract(node.root_member)


# ----------------------------------------------------------------------
# Algebra evaluation (Proposition 6.1)
# ----------------------------------------------------------------------
@dataclass
class NodeEvaluation:
    """Algebra state + boundary bookkeeping for one (sub)graph."""

    state: object
    boundary: tuple  # terminal vertices in canonical order
    t_in: dict
    t_out: dict
    lanes: tuple


@dataclass
class HierarchyEvaluation:
    """Results of one bottom-up algebra pass over a hierarchy.

    Evaluations are keyed by the serial ``node_id`` assigned by
    :func:`number_nodes` (not by object identity), so an evaluation
    pickled to another process — or persisted in an artifact cache —
    still resolves against any equal copy of its hierarchy.
    """

    algebra: BoundedAlgebra
    node_eval: dict = field(default_factory=dict)  # node_id -> NodeEvaluation
    subtree_eval: dict = field(default_factory=dict)  # member node_id -> NodeEvaluation

    def for_node(self, node: HierarchyNode) -> NodeEvaluation:
        return self.node_eval[node.node_id]

    def for_subtree(self, member: HierarchyNode) -> NodeEvaluation:
        return self.subtree_eval[member.node_id]

    def accepts(self, root: HierarchyNode) -> bool:
        evaluation = self.for_node(root)
        return self.algebra.accepts(evaluation.state, len(evaluation.boundary))


def canonical_boundary(lanes, t_in: dict, t_out: dict) -> tuple:
    """Paper's ξ order: by lane, in-terminal before out-terminal."""
    boundary = []
    for lane in sorted(lanes):
        for v in (t_in[lane], t_out[lane]):
            if v not in boundary:
                boundary.append(v)
    return tuple(boundary)


def evaluate_hierarchy(
    root: HierarchyNode, algebra: BoundedAlgebra
) -> HierarchyEvaluation:
    """Compute homomorphism classes bottom-up (the f_B/f_P of Prop 6.1)."""
    if root.node_id < 0:
        # Hand-built hierarchies (tests, external callers) may skip
        # number_nodes; evaluation keys require the serial ids.
        number_nodes(root)
    evaluation = HierarchyEvaluation(algebra=algebra)
    _eval_node(root, algebra, evaluation)
    return evaluation


def _eval_node(node, algebra, evaluation) -> NodeEvaluation:
    if node.kind == "V":
        state = algebra.new_vertices(1)
        result = NodeEvaluation(
            state, (node.vertex,), dict(node.t_in), dict(node.t_out), node.lanes
        )
    elif node.kind == "E":
        state = algebra.new_vertices(2)
        state = algebra.add_edge(state, 0, 1, node.edge_tag)
        result = NodeEvaluation(
            state, tuple(node.edge), dict(node.t_in), dict(node.t_out), node.lanes
        )
    elif node.kind == "P":
        w = len(node.path_vertices)
        state = algebra.new_vertices(w)
        for index, tag in enumerate(node.path_tags):
            state = algebra.add_edge(state, index, index + 1, tag)
        result = NodeEvaluation(
            state,
            tuple(node.path_vertices),
            dict(node.t_in),
            dict(node.t_out),
            node.lanes,
        )
    elif node.kind == "B":
        left, right = node.children
        left_eval = _eval_node(left, algebra, evaluation)
        right_eval = _eval_node(right, algebra, evaluation)
        state = algebra.join(
            left_eval.state,
            len(left_eval.boundary),
            right_eval.state,
            len(right_eval.boundary),
            (),
        )
        boundary = left_eval.boundary + right_eval.boundary
        i, j = node.bridge
        a = boundary.index(left.t_out[i])
        b = boundary.index(right.t_out[j])
        state = algebra.add_edge(state, a, b, node.bridge_tag)
        state, boundary = _project(
            algebra, state, boundary, node.lanes, node.t_in, node.t_out
        )
        result = NodeEvaluation(
            state, boundary, dict(node.t_in), dict(node.t_out), node.lanes
        )
    elif node.kind == "T":
        children: dict = {index: [] for index in range(len(node.children))}
        for index, parent in node.member_parent.items():
            if parent is not None:
                children[parent].append(index)

        def subtree(index: int) -> NodeEvaluation:
            member = node.children[index]
            acc = _eval_node(member, algebra, evaluation)
            acc_state, acc_boundary = acc.state, acc.boundary
            t_in, t_out = dict(acc.t_in), dict(acc.t_out)
            for kid_index in sorted(children[index]):
                kid = subtree(kid_index)
                # Parent-merge: glue the kid's in-terminals (same vertex
                # names) onto the current out-terminals, lane-wise.
                identify = []
                for lane in kid.lanes:
                    left_pos = acc_boundary.index(t_out[lane])
                    right_pos = kid.boundary.index(kid.t_in[lane])
                    identify.append((left_pos, right_pos))
                acc_state = algebra.join(
                    acc_state,
                    len(acc_boundary),
                    kid.state,
                    len(kid.boundary),
                    tuple(identify),
                )
                glued = {kid.t_in[lane] for lane in kid.lanes}
                acc_boundary = acc_boundary + tuple(
                    v for v in kid.boundary if v not in glued
                )
                for lane in kid.lanes:
                    t_out[lane] = kid.t_out[lane]
                acc_state, acc_boundary = _project(
                    algebra, acc_state, acc_boundary, acc.lanes, t_in, t_out
                )
            sub_result = NodeEvaluation(
                acc_state, acc_boundary, t_in, t_out, acc.lanes
            )
            evaluation.subtree_eval[member.node_id] = sub_result
            return sub_result

        result = subtree(node.root_member)
        result = NodeEvaluation(
            result.state, result.boundary, dict(node.t_in), dict(node.t_out), node.lanes
        )
    else:
        raise ValueError(f"unknown node kind {node.kind!r}")
    evaluation.node_eval[node.node_id] = result
    return result


def _project(algebra, state, boundary, lanes, t_in, t_out):
    """Forget boundary vertices that are no longer terminals."""
    target = canonical_boundary(lanes, t_in, t_out)
    keep = tuple(boundary.index(v) for v in target)
    if keep == tuple(range(len(boundary))):
        return state, boundary
    return algebra.forget(state, len(boundary), keep), target
