"""Proposition 5.6: every lanewidth-k graph is a single T-node.

The builder replays a :class:`ConstructionSequence` while maintaining the
paper's invariants:

* the current graph is ``Tree-merge(T)`` for a top-level tree ``T`` of
  E-, P-, and B-nodes rooted at the initial P-node;
* ``designated[i]`` is the lane-``i`` out-terminal of the current graph;
* ``lowest[i]`` is the lowest node of ``V(T)`` containing ``designated[i]``.

``V-insert`` hangs a fresh E-node under ``lowest[i]`` (Case 1).
``E-insert`` builds a B-node from V-nodes and/or packaged subtrees
(T-nodes) according to where the two designated vertices live relative to
their lowest common ancestor (Cases 2.1-2.3), which is exactly what keeps
the final hierarchy depth at most ``2k`` (Observation 5.5).
"""

from __future__ import annotations

from repro.core.hierarchy import HierarchyNode, number_nodes
from repro.core.lanewidth import ConstructionSequence


class _TreeState:
    """Mutable top-level tree bookkeeping."""

    def __init__(self, root: HierarchyNode):
        self.root = root
        self.parent: dict = {id(root): None}
        self.children: dict = {id(root): []}
        self.nodes: dict = {id(root): root}

    def attach(self, node: HierarchyNode, parent: HierarchyNode) -> None:
        self.parent[id(node)] = parent
        self.children[id(node)] = []
        self.children[id(parent)].append(node)
        self.nodes[id(node)] = node

    def ancestors(self, node: HierarchyNode) -> list:
        chain = [node]
        while self.parent[id(chain[-1])] is not None:
            chain.append(self.parent[id(chain[-1])])
        return chain

    def lca(self, a: HierarchyNode, b: HierarchyNode) -> HierarchyNode:
        seen = {id(x) for x in self.ancestors(a)}
        for node in self.ancestors(b):
            if id(node) in seen:
                return node
        raise AssertionError("nodes share no ancestor — tree corrupted")

    def child_ancestor_of(
        self, top: HierarchyNode, descendant: HierarchyNode
    ) -> HierarchyNode:
        """Return the child of ``top`` on the path down to ``descendant``."""
        chain = self.ancestors(descendant)
        for node, above in zip(chain, chain[1:]):
            if above is top:
                return node
        raise AssertionError(f"{descendant!r} is not below {top!r}")

    def subtree_members(self, node: HierarchyNode) -> list:
        """Return the subtree of ``node`` in DFS order (node first)."""
        members = [node]
        stack = [node]
        while stack:
            current = stack.pop()
            for child in self.children[id(current)]:
                members.append(child)
                stack.append(child)
        return members

    def detach_subtree(self, node: HierarchyNode) -> list:
        """Remove ``node``'s subtree from the tree; return its members."""
        members = self.subtree_members(node)
        parent = self.parent[id(node)]
        self.children[id(parent)].remove(node)
        for member in members:
            del self.parent[id(member)]
            del self.nodes[id(member)]
        internal_children = {id(m): self.children.pop(id(m)) for m in members}
        # Keep the internal structure on the node objects for packaging.
        self._detached_children = internal_children
        return members


def _package_subtree(state: _TreeState, members: list, designated: dict) -> HierarchyNode:
    """Wrap a detached subtree into a T-node (Tree-merge of the subtree)."""
    root = members[0]
    index_of = {id(member): pos for pos, member in enumerate(members)}
    member_parent = {}
    for pos, member in enumerate(members):
        member_parent[pos] = None
        for other_pos, other in enumerate(members):
            if member in state._detached_children.get(id(other), []):
                member_parent[pos] = other_pos
                break
    t_out = {lane: designated[lane] for lane in root.lanes}
    return HierarchyNode(
        kind="T",
        lanes=tuple(root.lanes),
        t_in=dict(root.t_in),
        t_out=t_out,
        children=list(members),
        member_parent=member_parent,
        root_member=0,
    )


def build_hierarchy(seq: ConstructionSequence) -> HierarchyNode:
    """Build the Proposition 5.6 hierarchy for a construction sequence."""
    lanes = tuple(range(seq.width))
    initial = {i: v for i, v in enumerate(seq.initial_vertices)}
    p_node = HierarchyNode(
        kind="P",
        lanes=lanes,
        t_in=dict(initial),
        t_out=dict(initial),
        path_vertices=tuple(seq.initial_vertices),
        path_tags=tuple(seq.initial_edge_tags),
    )
    state = _TreeState(p_node)
    designated = dict(initial)
    lowest = {i: p_node for i in lanes}

    for op in seq.ops:
        if op[0] == "V":
            _kind, lane, vertex, tag = op
            e_node = HierarchyNode(
                kind="E",
                lanes=(lane,),
                t_in={lane: designated[lane]},
                t_out={lane: vertex},
                edge=(designated[lane], vertex),
                edge_tag=tag,
            )
            anchor = lowest[lane]
            if lane not in anchor.lanes:
                raise AssertionError(
                    f"V-insert invariant broken: lane {lane} not in "
                    f"{anchor!r}'s lanes"
                )
            state.attach(e_node, anchor)
            designated[lane] = vertex
            lowest[lane] = e_node
            continue

        _kind, lane_i, lane_j, tag = op
        g_i, g_j = lowest[lane_i], lowest[lane_j]
        top = state.lca(g_i, g_j)

        def make_part(lane: int, g_node: HierarchyNode):
            """Return (part, detached members or None) for one bridge side."""
            if g_node is top:
                part = HierarchyNode(
                    kind="V",
                    lanes=(lane,),
                    t_in={lane: designated[lane]},
                    t_out={lane: designated[lane]},
                    vertex=designated[lane],
                )
                return part, None
            child = state.child_ancestor_of(top, g_node)
            members = state.detach_subtree(child)
            part = _package_subtree(state, members, designated)
            return part, members

        left, left_members = make_part(lane_i, g_i)
        right, right_members = make_part(lane_j, g_j)
        merged_lanes = tuple(sorted(set(left.lanes) | set(right.lanes)))
        b_node = HierarchyNode(
            kind="B",
            lanes=merged_lanes,
            t_in={**left.t_in, **right.t_in},
            t_out={**left.t_out, **right.t_out},
            children=[left, right],
            bridge=(lane_i, lane_j),
            bridge_tag=tag,
        )
        state.attach(b_node, top)
        moved = set()
        for members in (left_members, right_members):
            if members:
                moved.update(id(m) for m in members)
        for lane in lanes:
            if id(lowest[lane]) in moved:
                lowest[lane] = b_node
        lowest[lane_i] = b_node
        lowest[lane_j] = b_node

    members = state.subtree_members(p_node)
    index_of = {id(member): pos for pos, member in enumerate(members)}
    member_parent = {}
    for pos, member in enumerate(members):
        parent = state.parent[id(member)]
        member_parent[pos] = None if parent is None else index_of[id(parent)]
    root = HierarchyNode(
        kind="T",
        lanes=lanes,
        t_in=dict(initial),
        t_out={i: designated[i] for i in lanes},
        children=members,
        member_parent=member_parent,
        root_member=index_of[id(p_node)],
    )
    number_nodes(root)
    return root
