"""Completions and weak completions (Definition 4.4).

Given ``(G, I, P)`` — a graph, its interval representation, and a lane
partition — the *weak completion* adds the edges ``E1`` turning every
lane into a path, and the *completion* further adds ``E2`` joining the
initial vertices of consecutive lanes into a path.  Added edges are
tagged :data:`VIRTUAL`; original edges are tagged :data:`REAL` — the tag
is exactly the ``E ⊆ E'`` input-label trick in the proof of Theorem 1.

Edges of ``E1``/``E2`` that already exist in ``G`` stay real: the
completion is a supergraph, and an existing real edge already provides
the required adjacency (the construction sequence of Proposition 5.2
treats it by its completion role, while the MSO layer sees its real tag).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.courcelle.boundary import REAL, VIRTUAL
from repro.graphs import Graph, edge_key
from repro.core.lanes import KLanePartition


@dataclass
class CompletionResult:
    """The completion ``G' = (V, E ∪ E1 ∪ E2)`` with tagged edges."""

    graph: Graph  # the completion G' (edge labels: REAL / VIRTUAL)
    lane_partition: KLanePartition
    e1: list = field(default_factory=list)  # in-lane path edges
    e2: list = field(default_factory=list)  # lane-head path edges

    @property
    def virtual_edges(self) -> list:
        """Return the completion edges absent from the original graph."""
        return sorted(
            key
            for key in set(self.e1) | set(self.e2)
            if self.graph.edge_label(*key) == VIRTUAL
        )

    def real_subgraph(self) -> Graph:
        """Return the original graph ``(V, E)`` (real edges only)."""
        real = [
            key for key in self.graph.edges() if self.graph.edge_label(*key) == REAL
        ]
        return self.graph.edge_subgraph(real)


def build_completion(
    graph: Graph, partition: KLanePartition, weak: bool = False
) -> CompletionResult:
    """Return the (weak) completion of ``(G, I, P)`` per Definition 4.4."""
    completion = graph.copy()
    for u, v in completion.edges():
        completion.set_edge_label(u, v, REAL)

    e1 = []
    for lane in partition.lanes:
        for a, b in zip(lane, lane[1:]):
            key = edge_key(a, b)
            e1.append(key)
            if not completion.has_edge(*key):
                completion.add_edge(*key)
                completion.set_edge_label(*key, VIRTUAL)

    e2 = []
    if not weak:
        heads = partition.heads()
        for a, b in zip(heads, heads[1:]):
            key = edge_key(a, b)
            e2.append(key)
            if not completion.has_edge(*key):
                completion.add_edge(*key)
                completion.set_edge_label(*key, VIRTUAL)

    return CompletionResult(
        graph=completion, lane_partition=partition, e1=e1, e2=e2
    )
