"""Embeddings of completion edges into the original graph (Definition 4.5).

Every virtual edge ``e = {u, v}`` of the completion is realized as a
``u``–``v`` path ``P_e`` in ``G``; the *congestion* is the maximum number
of such paths crossing any single edge of ``G``.  Proposition 4.6 bounds
the congestion by ``g(k)`` (weak completion) and ``h(k)`` (completion),
which is what keeps the simulated edge labels O(log n) bits in the proof
of Theorem 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graphs import Graph, edge_key


@dataclass
class Embedding:
    """Paths realizing virtual edges inside the original graph."""

    graph: Graph  # the host graph G (real edges only)
    paths: dict = field(default_factory=dict)  # edge key -> vertex list

    def add_path(self, virtual_edge: tuple, path: list) -> None:
        """Register the embedding path for one virtual edge."""
        key = edge_key(*virtual_edge)
        if key in self.paths:
            raise ValueError(f"virtual edge {key!r} already embedded")
        self.paths[key] = list(path)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every path is a real walk between the right endpoints."""
        for (u, v), path in self.paths.items():
            if len(path) < 2:
                raise ValueError(f"path for {u!r}-{v!r} is degenerate")
            if {path[0], path[-1]} != {u, v}:
                raise ValueError(
                    f"path for {u!r}-{v!r} connects {path[0]!r}-{path[-1]!r}"
                )
            if len(set(path)) != len(path):
                raise ValueError(f"path for {u!r}-{v!r} repeats a vertex")
            for a, b in zip(path, path[1:]):
                if not self.graph.has_edge(a, b):
                    raise ValueError(
                        f"path for {u!r}-{v!r} uses missing edge {a!r}-{b!r}"
                    )

    def congestion(self) -> int:
        """Return the maximum number of paths through any one edge."""
        load: Counter = Counter()
        for path in self.paths.values():
            for a, b in zip(path, path[1:]):
                load[edge_key(a, b)] += 1
        return max(load.values(), default=0)

    def edge_loads(self) -> dict:
        """Return the per-edge path counts (for the congestion tables)."""
        load: Counter = Counter()
        for path in self.paths.values():
            for a, b in zip(path, path[1:]):
                load[edge_key(a, b)] += 1
        return dict(load)

    def merged_with(self, other: "Embedding") -> "Embedding":
        """Return the union of two embeddings over the same host graph."""
        merged = Embedding(self.graph, dict(self.paths))
        for key, path in other.paths.items():
            if key in merged.paths:
                raise ValueError(f"virtual edge {key!r} embedded twice")
            merged.paths[key] = list(path)
        return merged

    def __len__(self) -> int:
        return len(self.paths)
