"""Theorem 1: the O(log n)-bit proof labeling scheme.

``Theorem1Scheme`` certifies ``φ ∧ (pathwidth ≤ k)`` on a configuration:
the prover runs the full pipeline — path decomposition → interval
representation → lane partition with low-congestion embedding
(Proposition 4.6) → completion → construction sequence (Proposition 5.2)
→ hierarchy (Proposition 5.6) → homomorphism classes (Proposition 6.1) →
certificates (Lemmas 6.4/6.5 + embedding records) — and the verifier is
:func:`repro.core.verifier.verify_theorem1`.

``LanewidthScheme`` is the same machinery for *native* lanewidth
constructions (no Section 4 front end, no virtual edges): the benchmark
families of DESIGN.md use it to scale ``n`` without the f(k) constant
blow-up.  The construction sequence is supplied to the prover as a hint —
the paper's prover has unlimited computation and could recover one; ours
accepts the witness instead (documented substitution).

Both provers are thin shims over the staged pipeline in
:mod:`repro.api.pipeline` — ``prove`` assembles the matching stage list
and runs it.  New code should prefer :func:`repro.api.certify` or a
:class:`repro.api.CertificationSession`, which additionally expose
per-stage timings, structured reports, and cross-property reuse of the
structural stages; these classes are kept as the stable entry points of
the original API.  (The pipeline imports are deferred to call time:
``repro.api`` depends on this module for the verifier half, so an eager
import here would be circular.)

Per the paper's remark after Theorem 1, the structural part certified is
``pw(G) ≤ w - 1`` where ``w`` is the certified lanewidth (≤ f(k+1) when
the pipeline starts from a width-(k+1) interval representation) — the
exact-``k`` conjunct would additionally run the pathwidth-obstruction
formula through the same class machinery; see DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.certificates import Theorem1Label, label_bits
from repro.core.lane_partition import f_bound
from repro.core.lanewidth import ConstructionSequence, apply_construction
from repro.core.verifier import verify_theorem1
from repro.courcelle.registry import resolve_algebra
from repro.pls.bits import SizeContext
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling, ProofLabelingScheme

# The former module-private ``_EXACT_DECOMPOSITION_LIMIT = 14`` cutoff is
# now a documented, overridable parameter: see DecomposeStage(exact_limit=...)
# in repro.api.pipeline (DEFAULT_EXACT_DECOMPOSITION_LIMIT) and the
# ``exact_limit`` keyword threaded through Theorem1Scheme, the session,
# and the facade.


class CertifyingScheme(ProofLabelingScheme):
    """Shared verify/measure half of the two schemes.

    Subclasses supply ``prove``; the verifier and the bit accounting are
    property-independent, which is what lets a session swap algebras
    without touching the structural artifacts.
    """

    label_location = "edges"

    def __init__(self, algebra, max_width: int):
        self.algebra = resolve_algebra(algebra)
        self.max_width = max_width

    def verify(self, view) -> bool:
        return verify_theorem1(view, self.algebra, self.max_width)

    def label_size_bits(self, label, ctx: SizeContext) -> int:
        if not isinstance(label, Theorem1Label):
            return ctx.id_bits
        width = len(label.certificate.stack[0].info.lanes)
        # One accounting memo per size context: labels of one labeling
        # share record objects heavily, and the report sizes the whole
        # labeling back to back.  The memo is transient prover-side
        # state, dropped on pickling like the rest (verifier_only).
        memo = self.__dict__.get("_bits_memo")
        if memo is None or memo[0] is not ctx:
            memo = (ctx, {})
            self.__dict__["_bits_memo"] = memo
        return label_bits(label, ctx, width, memo[1])

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_bits_memo", None)
        return state

    def verifier_only(self):
        """The verify/measure half without any prover-side state.

        Witness decomposers may be closures and match stages carry cached
        graphs; neither survives pickling, and neither is needed by the
        verification round — ``verify`` depends only on the algebra and
        the certified width.
        """
        from repro.api.pipeline import PipelineScheme

        return PipelineScheme(self.algebra, self.max_width, ())


# Historical (pre-pipeline) name, kept for external subclasses.
_CertifyingScheme = CertifyingScheme


class Theorem1Scheme(CertifyingScheme):
    """Certify ``φ ∧ (pathwidth ≤ k)`` with O(log n)-bit edge labels.

    ``exact_limit`` bounds the instance size up to which the default
    decomposer runs a complete exact search (default:
    ``repro.api.pipeline.DEFAULT_EXACT_DECOMPOSITION_LIMIT``);
    ``exact_engine`` picks the engine (``"bnb"`` branch-and-bound by
    default, ``"dp"`` the legacy subset DP) and ``exact_budget_ms``
    authorizes a budgeted branch-and-bound attempt above the limit.
    """

    def __init__(
        self,
        algebra,
        k: int,
        decomposer: Optional[Callable] = None,
        exact_limit: Optional[int] = None,
        exact_engine: Optional[str] = None,
        exact_budget_ms: Optional[float] = None,
    ):
        if k < 1:
            raise ValueError("pathwidth bound must be at least 1")
        super().__init__(algebra, max_width=f_bound(k + 1))
        self.k = k
        self.decomposer = decomposer
        self.exact_limit = exact_limit
        self.exact_engine = exact_engine
        self.exact_budget_ms = exact_budget_ms

    def prove(self, config: Configuration) -> Labeling:
        from repro.api.pipeline import (
            CertificationPipeline,
            PipelineContext,
            theorem1_stages,
        )

        ctx = PipelineContext(config=config, algebra=self.algebra)
        stages = theorem1_stages(
            self.k,
            algebra=self.algebra,
            decomposer=self.decomposer,
            exact_limit=self.exact_limit,
            exact_engine=self.exact_engine,
            exact_budget_ms=self.exact_budget_ms,
        )
        CertificationPipeline(stages).run(ctx)
        return ctx.labeling


class LanewidthScheme(CertifyingScheme):
    """Certify ``φ`` on a graph given its lanewidth construction.

    The expected graph of ``sequence`` is replayed once and remembered as
    a fingerprint; repeated ``prove`` calls compare configurations by
    hash instead of rebuilding the graph and its edge/vertex sets.
    """

    def __init__(self, algebra, sequence: ConstructionSequence):
        super().__init__(algebra, max_width=sequence.width)
        self.sequence = sequence
        self._match_stage = None  # carries the cached expected fingerprint

    def prove(self, config: Configuration) -> Labeling:
        from repro.api.pipeline import (
            CertificationPipeline,
            MatchSequenceStage,
            PipelineContext,
            lanewidth_stages,
        )

        if self._match_stage is None:
            self._match_stage = MatchSequenceStage(self.sequence)
        ctx = PipelineContext(config=config, algebra=self.algebra)
        stages = lanewidth_stages(
            self.sequence, algebra=self.algebra, match_stage=self._match_stage
        )
        CertificationPipeline(stages).run(ctx)
        return ctx.labeling


def certify_lanewidth_graph(
    sequence: ConstructionSequence, algebra, rng=None
) -> tuple:
    """Convenience: build the configuration, prove, and verify.

    Returns ``(config, scheme, labeling, result)``.  Legacy entry point —
    :func:`repro.api.certify` returns the same information (and more) as
    a structured :class:`repro.api.CertificationReport`; use
    ``report.as_tuple()`` during migration.
    """
    from repro.pls.simulator import run_verification

    graph = apply_construction(sequence)
    config = Configuration.with_random_ids(graph, rng)
    scheme = LanewidthScheme(algebra, sequence)
    labeling = scheme.prove(config)
    result = run_verification(config, scheme, labeling)
    return config, scheme, labeling, result
