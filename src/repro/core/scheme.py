"""Theorem 1: the O(log n)-bit proof labeling scheme.

``Theorem1Scheme`` certifies ``φ ∧ (pathwidth ≤ k)`` on a configuration:
the prover runs the full pipeline — path decomposition → interval
representation → lane partition with low-congestion embedding
(Proposition 4.6) → completion → construction sequence (Proposition 5.2)
→ hierarchy (Proposition 5.6) → homomorphism classes (Proposition 6.1) →
certificates (Lemmas 6.4/6.5 + embedding records) — and the verifier is
:func:`repro.core.verifier.verify_theorem1`.

``LanewidthScheme`` is the same machinery for *native* lanewidth
constructions (no Section 4 front end, no virtual edges): the benchmark
families of DESIGN.md use it to scale ``n`` without the f(k) constant
blow-up.  The construction sequence is supplied to the prover as a hint —
the paper's prover has unlimited computation and could recover one; ours
accepts the witness instead (documented substitution).

Per the paper's remark after Theorem 1, the structural part certified is
``pw(G) ≤ w - 1`` where ``w`` is the certified lanewidth (≤ f(k+1) when
the pipeline starts from a width-(k+1) interval representation) — the
exact-``k`` conjunct would additionally run the pathwidth-obstruction
formula through the same class machinery; see DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.certificates import CertificateBuilder, Theorem1Label, label_bits
from repro.core.completion import build_completion
from repro.core.construction import build_hierarchy
from repro.core.embedding import Embedding
from repro.core.hierarchy import evaluate_hierarchy, hierarchy_depth, validate_hierarchy
from repro.core.lane_partition import build_lane_partition, f_bound
from repro.core.lanewidth import (
    ConstructionSequence,
    apply_construction,
    construction_sequence_from_completion,
)
from repro.core.verifier import verify_theorem1
from repro.courcelle.algebra import BoundedAlgebra
from repro.courcelle.registry import algebra_for
from repro.pathwidth.exact import exact_path_decomposition
from repro.pathwidth.heuristics import heuristic_path_decomposition
from repro.pls.bits import ClassIndexer, SizeContext
from repro.pls.model import Configuration
from repro.pls.scheme import Labeling, ProofLabelingScheme, ProverFailure

_EXACT_DECOMPOSITION_LIMIT = 14


def _default_decomposer(graph):
    if graph.n <= _EXACT_DECOMPOSITION_LIMIT:
        return exact_path_decomposition(graph)
    return heuristic_path_decomposition(graph)


class _CertifyingScheme(ProofLabelingScheme):
    """Shared verify/measure half of the two schemes."""

    label_location = "edges"

    def __init__(self, algebra, max_width: int):
        if isinstance(algebra, str):
            algebra = algebra_for(algebra)
        if not isinstance(algebra, BoundedAlgebra):
            raise TypeError("algebra must be a BoundedAlgebra or a registry key")
        self.algebra = algebra
        self.max_width = max_width

    def verify(self, view) -> bool:
        return verify_theorem1(view, self.algebra, self.max_width)

    def label_size_bits(self, label, ctx: SizeContext) -> int:
        if not isinstance(label, Theorem1Label):
            return ctx.id_bits
        width = len(label.certificate.stack[0].info.lanes)
        return label_bits(label, ctx, width)

    # ------------------------------------------------------------------
    def _finish(self, config, root, evaluation, embedding) -> Labeling:
        if not evaluation.accepts(root):
            raise ProverFailure("property does not hold on the real subgraph")
        indexer = ClassIndexer()
        builder = CertificateBuilder(config, root, evaluation, indexer)
        mapping = builder.physical_labels(embedding)
        ctx = SizeContext(config.n, class_count=indexer.class_count)
        return Labeling("edges", mapping, ctx)


class Theorem1Scheme(_CertifyingScheme):
    """Certify ``φ ∧ (pathwidth ≤ k)`` with O(log n)-bit edge labels."""

    def __init__(
        self,
        algebra,
        k: int,
        decomposer: Optional[Callable] = None,
    ):
        if k < 1:
            raise ValueError("pathwidth bound must be at least 1")
        super().__init__(algebra, max_width=f_bound(k + 1))
        self.k = k
        self.decomposer = decomposer or _default_decomposer

    def prove(self, config: Configuration) -> Labeling:
        graph = config.graph
        if graph.n < 2:
            raise ProverFailure("certification needs at least two vertices")
        if not graph.is_connected():
            raise ProverFailure("the network must be connected")
        decomposition = self.decomposer(graph)
        if decomposition.width() > self.k:
            raise ProverFailure(
                f"no witness decomposition of width <= {self.k} found "
                f"(got {decomposition.width()})"
            )
        rep = decomposition.to_interval_representation()
        lanes = build_lane_partition(graph, rep)
        completion = build_completion(graph, lanes.partition)
        sequence = construction_sequence_from_completion(completion)
        root = build_hierarchy(sequence)
        validate_hierarchy(root, completion.graph)
        if hierarchy_depth(root) > 2 * lanes.partition.width:
            raise AssertionError("Observation 5.5 depth bound violated")
        evaluation = evaluate_hierarchy(root, self.algebra)
        return self._finish(config, root, evaluation, lanes.full_embedding())


class LanewidthScheme(_CertifyingScheme):
    """Certify ``φ`` on a graph given its lanewidth construction."""

    def __init__(self, algebra, sequence: ConstructionSequence):
        super().__init__(algebra, max_width=sequence.width)
        self.sequence = sequence

    def prove(self, config: Configuration) -> Labeling:
        expected = apply_construction(self.sequence)
        if set(expected.edges()) != set(config.graph.edges()) or set(
            expected.vertices()
        ) != set(config.graph.vertices()):
            raise ProverFailure("configuration does not match the construction")
        root = build_hierarchy(self.sequence)
        evaluation = evaluate_hierarchy(root, self.algebra)
        return self._finish(config, root, evaluation, Embedding(config.graph))


def certify_lanewidth_graph(
    sequence: ConstructionSequence, algebra, rng=None
) -> tuple:
    """Convenience: build the configuration, prove, and verify.

    Returns ``(config, scheme, labeling, result)``.
    """
    from repro.pls.simulator import run_verification

    graph = apply_construction(sequence)
    config = Configuration.with_random_ids(graph, rng)
    scheme = LanewidthScheme(algebra, sequence)
    labeling = scheme.prove(config)
    result = run_verification(config, scheme, labeling)
    return config, scheme, labeling, result
