"""Certificate formats and the Lemma 6.4/6.5 prover.

Every edge of the completion ``G'`` receives an :class:`EdgeCertificate`:
the stack of per-node records along its ownership path in the hierarchy
(root T-node down to the leaf owning the edge — at most ``2w`` records by
Observation 5.5).  Each record carries the node's *basic information*
``B(N)`` (Definition 6.3: lane set, homomorphism class, terminal
identifiers), and kind-specific payload:

* **T records** add the owning member's ``B(M')``, the member-subtree
  class ``B(Tree-merge(T_{M'}))``, the child-subtree classes (one per
  internal child — at most ``w`` because siblings use disjoint lanes),
  and the Proposition 2.2 pointer record certifying the root member's
  existence;
* **B records** add both children's basic infos, the bridge lane pair,
  and which side of the bridge this edge lies on;
* **E/P records** add the leaf's full (constant-size) topology, from
  which the verifier recomputes the leaf class from scratch.

Physical labels live on the *real* edges of ``G``: each carries its own
certificate plus the embedded records of the virtual edges routed through
it (endpoint identifiers, forward/backward ranks, and the virtual edge's
full certificate — congestion is O(1) by Proposition 4.6, so this stays
O(log n)).

Homomorphism classes are shipped as algebra states (finite domain for
fixed property and lanewidth) and *charged* as ``ceil(log2 |C|)``-bit
indices via the :class:`ClassIndexer` — see DESIGN.md's accounting note.

The size formulas at the bottom of this module are the *accounted*
figures (arithmetic over field widths).  Since the wire codec landed,
the ground truth is the actual encoding: :mod:`repro.codec` serializes
every :class:`Theorem1Label` to bits per ``docs/FORMAT.md``, reports
quote those measured lengths, and the tier-1 suite asserts
measured ≤ accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from repro.core.embedding import Embedding
from repro.core.hierarchy import (
    HierarchyEvaluation,
    HierarchyNode,
    NodeEvaluation,
    canonical_boundary,
)
from repro.courcelle.boundary import REAL, VIRTUAL
from repro.graphs import edge_key
from repro.pls.bits import ClassIndexer, SizeContext
from repro.pls.model import Configuration
from repro.pls.pointer import PointerLabel


# ----------------------------------------------------------------------
# Label data types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BasicInfo:
    """B(N): lane set, homomorphism class, terminal identifiers."""

    kind: str
    node_id: int
    lanes: tuple
    in_ids: tuple  # ((lane, vertex id), ...) sorted by lane
    out_ids: tuple
    state: object  # the algebra state (the homomorphism class)

    def in_id(self, lane: int):
        for l, x in self.in_ids:
            if l == lane:
                return x
        return None

    def out_id(self, lane: int):
        for l, x in self.out_ids:
            if l == lane:
                return x
        return None

    @cached_property
    def boundary_ids(self) -> tuple:
        """Canonical boundary as identifiers (the paper's ξ order).

        Cached: the verifier's hierarchy walk asks for this repeatedly
        per record, and the fields it derives from are frozen.
        (``cached_property`` writes to ``__dict__`` directly, so the
        frozen-dataclass ``__setattr__`` guard is not in play; equality
        and hashing still cover only the declared fields.)
        """
        ids = []
        for lane in self.lanes:
            for x in (self.in_id(lane), self.out_id(lane)):
                if x not in ids:
                    ids.append(x)
        return tuple(ids)


@dataclass(frozen=True)
class TLevelRecord:
    """One edge's record for a T-node on its ownership path."""

    info: BasicInfo  # the T-node itself
    member_info: BasicInfo  # the member owning this edge
    member_subtree: BasicInfo  # B(Tree-merge(T_{member}))
    child_subtrees: tuple  # BasicInfo per internal child of the member
    pointer: PointerLabel  # Prop 2.2 within the T-node's subgraph
    root_member_id: int  # node id of the internal root member


@dataclass(frozen=True)
class BLevelRecord:
    """One edge's record for a B-node on its ownership path."""

    info: BasicInfo
    left: BasicInfo
    right: BasicInfo
    bridge: tuple  # (lane_i, lane_j)
    bridge_tag: object
    side: int  # 0 = inside left child, 1 = inside right child, -1 = bridge edge


@dataclass(frozen=True)
class ELevelRecord:
    """Leaf record: a single-edge node (full topology included)."""

    info: BasicInfo
    in_id: int
    out_id: int
    tag: object


@dataclass(frozen=True)
class PLevelRecord:
    """Leaf record: the initial-path node (full topology included)."""

    info: BasicInfo
    vertex_ids: tuple
    tags: tuple
    position: int  # this edge joins path positions (position, position+1)


@dataclass(frozen=True)
class EdgeCertificate:
    """The ownership-path stack for one edge of G'."""

    stack: tuple  # root-first records


@dataclass(frozen=True)
class EmbeddedRecord:
    """A virtual edge's certificate carried on one real edge of its path."""

    u_id: int
    v_id: int
    forward: int  # 1-based rank of this real edge along the path
    backward: int  # path_length + 1 - forward
    payload: EdgeCertificate


@dataclass(frozen=True)
class Theorem1Label:
    """The physical label on one real edge of G."""

    certificate: EdgeCertificate
    embedded: tuple = ()  # EmbeddedRecord per virtual edge routed here


# ----------------------------------------------------------------------
# The prover
# ----------------------------------------------------------------------
class CertificateBuilder:
    """Assigns Lemma 6.4/6.5 certificates for one proven hierarchy."""

    def __init__(
        self,
        config: Configuration,
        root: HierarchyNode,
        evaluation: HierarchyEvaluation,
        indexer: Optional[ClassIndexer] = None,
    ):
        self.config = config
        self.ids = config.ids
        self.root = root
        self.evaluation = evaluation
        self.indexer = indexer or ClassIndexer()
        self.algebra = evaluation.algebra
        # Identity-keyed fingerprint cache for one build: evaluations
        # hand back shared state objects, and hashing the canonical form
        # dominates ``basic_info`` without it.  Values hold the state,
        # so ids cannot be reused while the builder lives.
        self._fingerprints: dict = {}

    def _class_of(self, state) -> None:
        hit = self._fingerprints.get(id(state))
        if hit is None:
            hit = (state, self.algebra.state_fingerprint(state))
            self._fingerprints[id(state)] = hit
        self.indexer.index_of(hit[1])

    # ------------------------------------------------------------------
    def basic_info(self, node: HierarchyNode, evaluation: NodeEvaluation) -> BasicInfo:
        state = evaluation.state
        self._class_of(state)
        return BasicInfo(
            kind=node.kind,
            node_id=node.node_id,
            lanes=tuple(sorted(evaluation.lanes)),
            in_ids=tuple(
                (lane, self.ids[evaluation.t_in[lane]])
                for lane in sorted(evaluation.lanes)
            ),
            out_ids=tuple(
                (lane, self.ids[evaluation.t_out[lane]])
                for lane in sorted(evaluation.lanes)
            ),
            state=state,
        )

    def node_info(self, node: HierarchyNode) -> BasicInfo:
        return self.basic_info(node, self.evaluation.for_node(node))

    def subtree_info(self, t_node: HierarchyNode, member: HierarchyNode) -> BasicInfo:
        sub = self.evaluation.for_subtree(member)
        info = BasicInfo(
            kind="T",
            node_id=member.node_id,
            lanes=tuple(sorted(sub.lanes)),
            in_ids=tuple(
                (lane, self.ids[sub.t_in[lane]]) for lane in sorted(sub.lanes)
            ),
            out_ids=tuple(
                (lane, self.ids[sub.t_out[lane]]) for lane in sorted(sub.lanes)
            ),
            state=sub.state,
        )
        self._class_of(sub.state)
        return info

    # ------------------------------------------------------------------
    def edge_certificates(self) -> dict:
        """Return ``edge key -> EdgeCertificate`` for every edge of G'."""
        certificates: dict = {}
        self._assign(self.root, (), certificates)
        return certificates

    def _assign(self, node: HierarchyNode, stack: tuple, certificates: dict) -> None:
        if node.kind == "E":
            u, v = node.edge
            record = ELevelRecord(
                info=self.node_info(node),
                in_id=self.ids[u],
                out_id=self.ids[v],
                tag=node.edge_tag,
            )
            certificates[edge_key(u, v)] = EdgeCertificate(stack + (record,))
            return
        if node.kind == "P":
            info = self.node_info(node)
            ids = tuple(self.ids[v] for v in node.path_vertices)
            for position, (a, b) in enumerate(
                zip(node.path_vertices, node.path_vertices[1:])
            ):
                record = PLevelRecord(
                    info=info,
                    vertex_ids=ids,
                    tags=tuple(node.path_tags),
                    position=position,
                )
                certificates[edge_key(a, b)] = EdgeCertificate(stack + (record,))
            return
        if node.kind == "V":
            return  # owns no edges
        if node.kind == "B":
            info = self.node_info(node)
            left, right = node.children
            left_info = self.node_info(left)
            right_info = self.node_info(right)
            i, j = node.bridge
            bridge_edge = edge_key(left.t_out[i], right.t_out[j])
            base = dict(
                info=info,
                left=left_info,
                right=right_info,
                bridge=(i, j),
                bridge_tag=node.bridge_tag,
            )
            certificates[bridge_edge] = EdgeCertificate(
                stack + (BLevelRecord(side=-1, **base),)
            )
            self._assign(left, stack + (BLevelRecord(side=0, **base),), certificates)
            self._assign(right, stack + (BLevelRecord(side=1, **base),), certificates)
            return
        if node.kind == "T":
            info = self.node_info(node)
            root_member_id = node.children[node.root_member].node_id
            pointer_by_edge = self._pointer_labels(node)
            internal_children: dict = {
                index: [] for index in range(len(node.children))
            }
            for index, parent in node.member_parent.items():
                if parent is not None:
                    internal_children[parent].append(index)
            for index, member in enumerate(node.children):
                child_infos = tuple(
                    self.subtree_info(node, node.children[c])
                    for c in sorted(internal_children[index])
                )
                member_record_base = dict(
                    info=info,
                    member_info=self.node_info(member),
                    member_subtree=self.subtree_info(node, member),
                    child_subtrees=child_infos,
                    root_member_id=root_member_id,
                )
                member_certs: dict = {}
                self._assign(member, (), member_certs)
                for key, cert in member_certs.items():
                    record = TLevelRecord(
                        pointer=pointer_by_edge[key], **member_record_base
                    )
                    certificates[key] = EdgeCertificate(
                        stack + (record,) + cert.stack
                    )
            return
        raise ValueError(f"unknown node kind {node.kind!r}")

    def _pointer_labels(self, t_node: HierarchyNode) -> dict:
        """Prop 2.2 labels over the T-node's subgraph, rooted in the root
        member (certifying that the internal root exists)."""
        from repro.graphs import Graph

        subgraph = Graph(vertices=t_node.all_vertices())
        for key, _tag in t_node.all_edges():
            subgraph.add_edge(*key)
        root_member = t_node.children[t_node.root_member]
        target = root_member.t_in[min(root_member.lanes)]
        distances = subgraph.distances_from(target)
        labels = {}
        for u, v in subgraph.edges():
            labels[edge_key(u, v)] = PointerLabel(
                target_id=self.ids[target],
                id_a=self.ids[u],
                dist_a=distances[u],
                id_b=self.ids[v],
                dist_b=distances[v],
            )
        return labels

    # ------------------------------------------------------------------
    def physical_labels(self, embedding: Embedding) -> dict:
        """Attach virtual-edge certificates along their embedding paths.

        Returns ``real edge key -> Theorem1Label``.  Real edges missing
        from ``certificates`` cannot happen (every real edge is in G').
        """
        certificates = self.edge_certificates()
        virtual_keys = set(embedding.paths)
        # Pass 1 — materialize each path's records in one sweep (they
        # share u_id/v_id/payload; only the rank pair varies), then
        # bucket them under their carrier edges.
        embedded: dict = {}
        for key, path in embedding.paths.items():
            payload = certificates[key]
            u_id = self.ids[path[0]]
            v_id = self.ids[path[-1]]
            length = len(path) - 1
            records = [
                EmbeddedRecord(
                    u_id=u_id,
                    v_id=v_id,
                    forward=rank,
                    backward=length + 1 - rank,
                    payload=payload,
                )
                for rank in range(1, length + 1)
            ]
            for record, a, b in zip(records, path, path[1:]):
                carrier = edge_key(a, b)
                bucket = embedded.get(carrier)
                if bucket is None:
                    embedded[carrier] = [record]
                else:
                    bucket.append(record)
        # Pass 2 — assemble the whole mapping in one comprehension;
        # edges without embedded traffic share a single empty tuple.
        # Virtual edges have no physical carrier of their own.
        empty: tuple = ()
        return {
            key: Theorem1Label(
                certificate=certificate,
                embedded=(
                    tuple(embedded[key]) if key in embedded else empty
                ),
            )
            for key, certificate in certificates.items()
            if key not in virtual_keys
        }


# ----------------------------------------------------------------------
# Size accounting
# ----------------------------------------------------------------------
_KIND_BITS = 3


def basic_info_bits(info: BasicInfo, ctx: SizeContext, width: int) -> int:
    """Encoded size of one B(N) record."""
    terminal_fields = len(info.in_ids) + len(info.out_ids)
    return (
        _KIND_BITS
        + ctx.counter_bits  # node id
        + width  # lane bitmask
        + terminal_fields * ctx.id_bits
        + ctx.class_bits  # homomorphism class index
    )


def record_bits(record, ctx: SizeContext, width: int, memo=None) -> int:
    """Encoded size of one ownership-path record.

    ``memo`` (optional) is an identity-keyed cache for one accounting
    pass: prover stages share record objects across many stacks, so a
    labeling-wide walk sizes each unique record once.  Values keep a
    strong reference to their key object, so ``id`` reuse cannot alias.
    """
    if memo is not None:
        key = (id(record), width)
        hit = memo.get(key)
        if hit is None:
            hit = (record, _record_bits_direct(record, ctx, width))
            memo[key] = hit
        return hit[1]
    return _record_bits_direct(record, ctx, width)


def _record_bits_direct(record, ctx: SizeContext, width: int) -> int:
    if isinstance(record, TLevelRecord):
        total = basic_info_bits(record.info, ctx, width)
        total += basic_info_bits(record.member_info, ctx, width)
        total += basic_info_bits(record.member_subtree, ctx, width)
        for child in record.child_subtrees:
            total += basic_info_bits(child, ctx, width)
        total += 3 * ctx.id_bits + 2 * ctx.counter_bits  # pointer record
        return total
    if isinstance(record, BLevelRecord):
        total = basic_info_bits(record.info, ctx, width)
        total += basic_info_bits(record.left, ctx, width)
        total += basic_info_bits(record.right, ctx, width)
        total += 2 * width.bit_length() + 2 + 2  # bridge lanes, tag, side
        return total
    if isinstance(record, ELevelRecord):
        return (
            basic_info_bits(record.info, ctx, width) + 2 * ctx.id_bits + 2
        )
    if isinstance(record, PLevelRecord):
        return (
            basic_info_bits(record.info, ctx, width)
            + len(record.vertex_ids) * ctx.id_bits
            + len(record.tags) * 2
            + ctx.counter_bits  # position
        )
    raise TypeError(f"unknown record type {type(record).__name__}")


def certificate_bits(
    cert: EdgeCertificate, ctx: SizeContext, width: int, memo=None
) -> int:
    """Encoded size of one edge certificate."""
    if memo is not None:
        key = (id(cert), width)
        hit = memo.get(key)
        if hit is None:
            hit = (
                cert,
                sum(
                    record_bits(record, ctx, width, memo)
                    for record in cert.stack
                ),
            )
            memo[key] = hit
        return hit[1]
    return sum(record_bits(record, ctx, width) for record in cert.stack)


def label_bits(
    label: Theorem1Label, ctx: SizeContext, width: int, memo=None
) -> int:
    """Encoded size of one physical label (certificate + embeddings)."""
    total = certificate_bits(label.certificate, ctx, width, memo)
    for record in label.embedded:
        total += 2 * ctx.id_bits + 2 * ctx.counter_bits
        total += certificate_bits(record.payload, ctx, width, memo)
    return total
