"""Certificate wire codec: bit-level I/O and the versioned label format.

The reproduction's size claims are only as honest as the bytes behind
them.  This package materializes every
:class:`~repro.core.certificates.Theorem1Label` as an actual bit string:

* :mod:`repro.codec.bitio` — MSB-first :class:`BitWriter` /
  :class:`BitReader` primitives;
* :mod:`repro.codec.wire` — the versioned wire format (v1): a shared
  :class:`WireHeader` per labeling plus per-edge encodings, with
  ``decode(encode(label)) == label`` guaranteed by tier-1 property
  tests and the measured bit counts feeding
  :class:`~repro.api.results.CertificationReport`.

The byte-level layout is specified in ``docs/FORMAT.md``; persistence of
encoded labelings lives in :class:`repro.api.store.CertificateStore`.
"""

from repro.codec.bitio import (
    BitReader,
    BitStreamError,
    BitWriter,
    width_for,
    width_for_value,
)
from repro.codec.wire import (
    WIRE_VERSION,
    CodecError,
    EncodedLabel,
    EncodedLabeling,
    WireHeader,
    decode_label,
    decode_labeling,
    encode_label,
    encode_labeling,
    labeling_digest,
    stamp_wire_digest,
)
from repro.codec.columnar import (
    ColumnarDecoder,
    ColumnarEncoder,
    decode_labeling_columnar,
    encode_labeling_columnar,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "BitStreamError",
    "width_for",
    "width_for_value",
    "WIRE_VERSION",
    "CodecError",
    "WireHeader",
    "EncodedLabel",
    "EncodedLabeling",
    "encode_label",
    "decode_label",
    "encode_labeling",
    "decode_labeling",
    "labeling_digest",
    "stamp_wire_digest",
    "ColumnarDecoder",
    "ColumnarEncoder",
    "decode_labeling_columnar",
    "encode_labeling_columnar",
]
