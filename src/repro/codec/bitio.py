"""MSB-first bit-level I/O for the certificate wire format.

:class:`BitWriter` packs fixed-width unsigned fields into a byte string;
:class:`BitReader` unpacks them in the same order.  Fields are written
most-significant-bit first, so the byte stream is a straight left-to-right
transcription of the format diagrams in ``docs/FORMAT.md``: the first
field written occupies the highest bits of the first byte.

The writer tracks the exact number of *semantic* bits
(:attr:`BitWriter.bit_length`) separately from the zero-padded byte
output of :meth:`BitWriter.to_bytes` — the measured certificate size the
reports quote is the former, never the padding.

:meth:`BitWriter.write_many` is the bulk twin of :meth:`BitWriter.write`:
given parallel value/width sequences it packs every field in one
numpy pass (expand fields to a flat bit array, ``np.packbits``), falling
back to the scalar loop when numpy is unavailable or a field is wider
than an ``int64`` can carry.  Both paths produce identical streams.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised through both branches in CI
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class BitStreamError(ValueError):
    """Raised on malformed writes (value overflow) or truncated reads."""


_IOTA = None  # grow-only arange cache shared by every _field_bits call


def _iota(total):
    """Return ``arange(total)`` from a grow-only shared buffer."""
    global _IOTA
    if _IOTA is None or _IOTA.shape[0] < total:
        _IOTA = _np.arange(max(total, 1 << 16), dtype=_np.int64)
    return _IOTA[:total]


def _field_bits(values, widths):
    """Flat 0/1 ``uint8`` array of ``values`` expanded MSB-first.

    ``values``/``widths`` are equal-length ``int64`` arrays with every
    width in ``0..63`` and every value non-negative and in range.
    """
    total = int(widths.sum())
    if total == 0:
        return _np.zeros(0, dtype=_np.uint8)
    # Expand all 64 bits of every value once (big-endian, so bit 0 of
    # the expansion is the value's MSB), then gather each field's low
    # ``width`` bits: output bit p of field f at local offset o from the
    # field's MSB is expansion bit 64*f + (64 - widths[f] + o).
    allbits = _np.unpackbits(values.astype(">i8").view(_np.uint8))
    starts = _np.cumsum(widths) - widths
    base = 64 * _iota(values.shape[0]) + 64 - widths - starts
    index = _np.repeat(base, widths) + _iota(total)
    return allbits[index]


class BitWriter:
    """Accumulates fixed-width unsigned integers into a bit stream."""

    def __init__(self):
        self._bytes = bytearray()
        self._acc = 0  # bits not yet flushed to _bytes
        self._acc_bits = 0

    @property
    def bit_length(self) -> int:
        """Exact number of bits written so far (excludes padding)."""
        return 8 * len(self._bytes) + self._acc_bits

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as a ``width``-bit big-endian field."""
        if width < 0:
            raise BitStreamError("field width must be non-negative")
        if value < 0 or value >> width:
            raise BitStreamError(
                f"value {value} does not fit in {width} bits"
            )
        acc = (self._acc << width) | value
        bits = self._acc_bits + width
        # Drain whole bytes in one C-level conversion: wide fields (the
        # codec replays memoized multi-kilobit runs as single writes)
        # would otherwise pay a quadratic python shift loop.
        whole, rest = bits >> 3, bits & 7
        if whole:
            self._bytes += (acc >> rest).to_bytes(whole, "big")
            acc &= (1 << rest) - 1
        self._acc = acc
        self._acc_bits = rest

    def write_flag(self, flag: bool) -> None:
        """Append a single bit."""
        self.write(1 if flag else 0, 1)

    def write_many(self, values, widths) -> None:
        """Append many fixed-width fields in one vectorized pass.

        Equivalent to ``for v, w in zip(values, widths): self.write(v, w)``
        but packed through numpy (one bit-expansion + ``np.packbits``
        per call) — the bulk path :class:`repro.codec.columnar
        .ColumnarEncoder` uses to pack a whole labeling at once.  Falls
        back to the scalar loop when numpy is missing, a value exceeds
        ``int64`` range, or a field is wider than 63 bits, so the output
        stream is identical either way.
        """
        if _np is not None:
            try:
                varr = _np.asarray(values, dtype=_np.int64)
                warr = _np.asarray(widths, dtype=_np.int64)
            except (OverflowError, TypeError, ValueError):
                varr = None
            if (
                varr is not None
                and varr.shape == warr.shape
                and varr.ndim == 1
                and (varr.size == 0 or int(warr.max()) <= 63)
                and (varr.size == 0 or int(warr.min()) >= 0)
            ):
                if varr.size and ((varr < 0) | (varr >> warr != 0)).any():
                    bad = int(_np.argmax((varr < 0) | (varr >> warr != 0)))
                    raise BitStreamError(
                        f"value {int(varr[bad])} does not fit in "
                        f"{int(warr[bad])} bits"
                    )
                self._append_bits(_field_bits(varr, warr))
                return
        for value, width in zip(values, widths):
            self.write(value, width)

    def _append_bits(self, bits) -> None:
        """Append a flat 0/1 ``uint8`` bit array to the stream."""
        if bits.size == 0:
            return
        if self._acc_bits:
            prefix = _np.zeros(self._acc_bits, dtype=_np.uint8)
            for index in range(self._acc_bits):
                prefix[self._acc_bits - 1 - index] = (self._acc >> index) & 1
            bits = _np.concatenate([prefix, bits])
        whole = bits.size >> 3
        if whole:
            self._bytes += _np.packbits(bits[: whole * 8]).tobytes()
        acc = 0
        for bit in bits[whole * 8:].tolist():
            acc = (acc << 1) | int(bit)
        self._acc = acc
        self._acc_bits = bits.size & 7

    def to_bytes(self) -> bytes:
        """Return the stream, zero-padded up to the next byte boundary."""
        out = bytes(self._bytes)
        if self._acc_bits:
            out += bytes([(self._acc << (8 - self._acc_bits)) & 0xFF])
        return out


class BitReader:
    """Reads fixed-width unsigned integers back out of a bit stream."""

    def __init__(self, data: bytes, bit_length: int = None):
        """``bit_length`` bounds the readable bits (default: all of
        ``data``); reads past it raise :class:`BitStreamError` instead of
        silently consuming padding."""
        self._data = data
        self._limit = 8 * len(data) if bit_length is None else bit_length
        if self._limit > 8 * len(data):
            raise BitStreamError("bit_length exceeds the supplied data")
        self._pos = 0

    @property
    def position(self) -> int:
        """Bits consumed so far."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Readable bits left before the stream (or limit) ends."""
        return self._limit - self._pos

    def read(self, width: int) -> int:
        """Consume and return the next ``width``-bit unsigned field."""
        if width < 0:
            raise BitStreamError("field width must be non-negative")
        if self._pos + width > self._limit:
            raise BitStreamError(
                f"truncated stream: need {width} bits, have {self.remaining}"
            )
        value = 0
        pos = self._pos
        need = width
        while need:
            byte = self._data[pos >> 3]
            offset = pos & 7
            take = min(8 - offset, need)
            chunk = (byte >> (8 - offset - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            pos += take
            need -= take
        self._pos = pos
        return value

    def read_flag(self) -> bool:
        """Consume and return a single bit."""
        return bool(self.read(1))


def width_for(count: int) -> int:
    """Field width needed to index ``count`` distinct values (min 1)."""
    if count < 0:
        raise BitStreamError("count must be non-negative")
    return max(1, (max(count, 2) - 1).bit_length())


def width_for_value(value: int) -> int:
    """Field width needed to store values ``0..value`` (min 1)."""
    if value < 0:
        raise BitStreamError("value must be non-negative")
    return max(1, value.bit_length())
