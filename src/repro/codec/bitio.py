"""MSB-first bit-level I/O for the certificate wire format.

:class:`BitWriter` packs fixed-width unsigned fields into a byte string;
:class:`BitReader` unpacks them in the same order.  Fields are written
most-significant-bit first, so the byte stream is a straight left-to-right
transcription of the format diagrams in ``docs/FORMAT.md``: the first
field written occupies the highest bits of the first byte.

The writer tracks the exact number of *semantic* bits
(:attr:`BitWriter.bit_length`) separately from the zero-padded byte
output of :meth:`BitWriter.to_bytes` — the measured certificate size the
reports quote is the former, never the padding.
"""

from __future__ import annotations


class BitStreamError(ValueError):
    """Raised on malformed writes (value overflow) or truncated reads."""


class BitWriter:
    """Accumulates fixed-width unsigned integers into a bit stream."""

    def __init__(self):
        self._bytes = bytearray()
        self._acc = 0  # bits not yet flushed to _bytes
        self._acc_bits = 0

    @property
    def bit_length(self) -> int:
        """Exact number of bits written so far (excludes padding)."""
        return 8 * len(self._bytes) + self._acc_bits

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as a ``width``-bit big-endian field."""
        if width < 0:
            raise BitStreamError("field width must be non-negative")
        if value < 0 or value >> width:
            raise BitStreamError(
                f"value {value} does not fit in {width} bits"
            )
        acc = (self._acc << width) | value
        bits = self._acc_bits + width
        # Drain whole bytes in one C-level conversion: wide fields (the
        # codec replays memoized multi-kilobit runs as single writes)
        # would otherwise pay a quadratic python shift loop.
        whole, rest = bits >> 3, bits & 7
        if whole:
            self._bytes += (acc >> rest).to_bytes(whole, "big")
            acc &= (1 << rest) - 1
        self._acc = acc
        self._acc_bits = rest

    def write_flag(self, flag: bool) -> None:
        """Append a single bit."""
        self.write(1 if flag else 0, 1)

    def to_bytes(self) -> bytes:
        """Return the stream, zero-padded up to the next byte boundary."""
        out = bytes(self._bytes)
        if self._acc_bits:
            out += bytes([(self._acc << (8 - self._acc_bits)) & 0xFF])
        return out


class BitReader:
    """Reads fixed-width unsigned integers back out of a bit stream."""

    def __init__(self, data: bytes, bit_length: int = None):
        """``bit_length`` bounds the readable bits (default: all of
        ``data``); reads past it raise :class:`BitStreamError` instead of
        silently consuming padding."""
        self._data = data
        self._limit = 8 * len(data) if bit_length is None else bit_length
        if self._limit > 8 * len(data):
            raise BitStreamError("bit_length exceeds the supplied data")
        self._pos = 0

    @property
    def position(self) -> int:
        """Bits consumed so far."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Readable bits left before the stream (or limit) ends."""
        return self._limit - self._pos

    def read(self, width: int) -> int:
        """Consume and return the next ``width``-bit unsigned field."""
        if width < 0:
            raise BitStreamError("field width must be non-negative")
        if self._pos + width > self._limit:
            raise BitStreamError(
                f"truncated stream: need {width} bits, have {self.remaining}"
            )
        value = 0
        pos = self._pos
        need = width
        while need:
            byte = self._data[pos >> 3]
            offset = pos & 7
            take = min(8 - offset, need)
            chunk = (byte >> (8 - offset - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            pos += take
            need -= take
        self._pos = pos
        return value

    def read_flag(self) -> bool:
        """Consume and return a single bit."""
        return bool(self.read(1))


def width_for(count: int) -> int:
    """Field width needed to index ``count`` distinct values (min 1)."""
    if count < 0:
        raise BitStreamError("count must be non-negative")
    return max(1, (max(count, 2) - 1).bit_length())


def width_for_value(value: int) -> int:
    """Field width needed to store values ``0..value`` (min 1)."""
    if value < 0:
        raise BitStreamError("value must be non-negative")
    return max(1, value.bit_length())
