"""Columnar bulk decode: one interning pass over a whole labeling.

:meth:`EncodedLabeling.decode` rebuilds each edge's label independently,
so equal-content :class:`~repro.core.certificates.BasicInfo` and record
objects come back as *distinct* python objects — one fresh object graph
per edge even though certificates overwhelmingly share sub-structure
(the same tree node's info appears on every incident edge of its
subtree).  That costs decode time, resident memory, and — since PR 8 —
kernel compile time: the vectorized executors intern certificates by
content, and interning distinct-but-equal objects pays a deep dataclass
hash per occurrence where an identity hit would be a dict lookup.

This module decodes a labeling *columnarly*: every component is keyed
by the raw wire codes that encode it (infos by their code tuple,
pointers by their code tuple, records by component identities plus
scalars, certificate stacks by record-identity tuples) and constructed
exactly once.  Because interned sub-objects are unique per content, the
identity-based record and stack keys are content-faithful without ever
hashing a dataclass.  The result is ``==`` to the reference decode —
pinned by tier-1 tests — but maximally shared: the kernel compiler's
``id()`` memo then hits once per distinct certificate instead of once
per edge.
"""

from __future__ import annotations

from repro.core.certificates import (
    BasicInfo,
    BLevelRecord,
    EdgeCertificate,
    ELevelRecord,
    EmbeddedRecord,
    PLevelRecord,
    Theorem1Label,
    TLevelRecord,
)
from repro.codec.bitio import BitReader, BitStreamError
from repro.codec.wire import (
    _KIND_BITS,
    _KIND_NAMES,
    CodecError,
    EncodedLabeling,
    WireHeader,
)
from repro.pls.pointer import PointerLabel
from repro.pls.scheme import Labeling


class ColumnarDecoder:
    """Shared interning state for one bulk decode (one header)."""

    __slots__ = ("header", "_infos", "_pointers", "_records", "_certs")

    def __init__(self, header: WireHeader):
        self.header = header
        self._infos = {}
        self._pointers = {}
        self._records = {}
        self._certs = {}

    # Raw-code readers: consume exactly the same bits as the reference
    # ``_decode_*`` functions, but intern before constructing.

    def _read_info(self, r: BitReader) -> BasicInfo:
        h = self.header
        kind_code = r.read(_KIND_BITS)
        if kind_code not in _KIND_NAMES:
            raise CodecError(f"invalid kind code {kind_code}")
        node_raw = r.read(h.node_width)
        mask = r.read(h.lane_bits)
        lane_count = bin(mask).count("1")
        in_codes = tuple(
            r.read(h.id_index_bits) for _ in range(lane_count)
        )
        out_codes = tuple(
            r.read(h.id_index_bits) for _ in range(lane_count)
        )
        state_code = r.read(h.class_bits)
        key = (kind_code, node_raw, mask, in_codes, out_codes, state_code)
        info = self._infos.get(key)
        if info is None:
            lanes = tuple(
                lane for lane in range(h.lane_bits) if mask & (1 << lane)
            )
            info = BasicInfo(
                kind=_KIND_NAMES[kind_code],
                node_id=node_raw - 1,
                lanes=lanes,
                in_ids=tuple(
                    (lane, h.id_table[code])
                    for lane, code in zip(lanes, in_codes)
                ),
                out_ids=tuple(
                    (lane, h.id_table[code])
                    for lane, code in zip(lanes, out_codes)
                ),
                state=h.states[state_code],
            )
            self._infos[key] = info
        return info

    def _read_pointer(self, r: BitReader) -> PointerLabel:
        h = self.header
        key = (
            r.read(h.id_index_bits),
            r.read(h.id_index_bits),
            r.read(h.counter_width),
            r.read(h.id_index_bits),
            r.read(h.counter_width),
        )
        pointer = self._pointers.get(key)
        if pointer is None:
            pointer = PointerLabel(
                target_id=h.id_table[key[0]],
                id_a=h.id_table[key[1]],
                dist_a=key[2],
                id_b=h.id_table[key[3]],
                dist_b=key[4],
            )
            self._pointers[key] = pointer
        return pointer

    def _read_record(self, r: BitReader):
        h = self.header
        info = self._read_info(r)
        if info.kind == "T":
            member_info = self._read_info(r)
            member_subtree = self._read_info(r)
            children = tuple(
                self._read_info(r) for _ in range(r.read(h.child_width))
            )
            pointer = self._read_pointer(r)
            root_raw = r.read(h.node_width)
            # Interned components are unique per content, so identity
            # keys are content keys — no dataclass hashing anywhere.
            key = (
                "T",
                id(info),
                id(member_info),
                id(member_subtree),
                tuple(id(child) for child in children),
                id(pointer),
                root_raw,
            )
            record = self._records.get(key)
            if record is None:
                record = TLevelRecord(
                    info=info,
                    member_info=member_info,
                    member_subtree=member_subtree,
                    child_subtrees=children,
                    pointer=pointer,
                    root_member_id=root_raw - 1,
                )
                self._records[key] = record
            return record
        if info.kind == "B":
            left = self._read_info(r)
            right = self._read_info(r)
            bridge = (r.read(h.lane_index_bits), r.read(h.lane_index_bits))
            tag_code = r.read(h.tag_bits)
            side_raw = r.read(2)
            key = (
                "B", id(info), id(left), id(right), bridge, tag_code,
                side_raw,
            )
            record = self._records.get(key)
            if record is None:
                record = BLevelRecord(
                    info=info,
                    left=left,
                    right=right,
                    bridge=bridge,
                    bridge_tag=h.tags[tag_code],
                    side=side_raw - 1,
                )
                self._records[key] = record
            return record
        if info.kind == "E":
            key = (
                "E",
                id(info),
                r.read(h.id_index_bits),
                r.read(h.id_index_bits),
                r.read(h.tag_bits),
            )
            record = self._records.get(key)
            if record is None:
                record = ELevelRecord(
                    info=info,
                    in_id=h.id_table[key[2]],
                    out_id=h.id_table[key[3]],
                    tag=h.tags[key[4]],
                )
                self._records[key] = record
            return record
        if info.kind == "P":
            id_codes = tuple(
                r.read(h.id_index_bits)
                for _ in range(r.read(h.path_width))
            )
            tag_codes = tuple(
                r.read(h.tag_bits) for _ in range(r.read(h.path_width))
            )
            position = r.read(h.counter_width)
            key = ("P", id(info), id_codes, tag_codes, position)
            record = self._records.get(key)
            if record is None:
                record = PLevelRecord(
                    info=info,
                    vertex_ids=tuple(
                        h.id_table[code] for code in id_codes
                    ),
                    tags=tuple(h.tags[code] for code in tag_codes),
                    position=position,
                )
                self._records[key] = record
            return record
        raise CodecError(
            f"record cannot start with a {info.kind!r} node info"
        )

    def _read_certificate(self, r: BitReader) -> EdgeCertificate:
        depth = r.read(self.header.depth_width)
        if depth < 1:
            raise CodecError("certificate stack cannot be empty")
        records = tuple(self._read_record(r) for _ in range(depth))
        key = tuple(id(record) for record in records)
        cert = self._certs.get(key)
        if cert is None:
            cert = EdgeCertificate(records)
            self._certs[key] = cert
        return cert

    def decode_label(self, data: bytes, bit_length=None) -> Theorem1Label:
        """Interning twin of :func:`repro.codec.wire.decode_label`."""
        h = self.header
        try:
            r = BitReader(data, bit_length)
            certificate = self._read_certificate(r)
            embedded = []
            for _ in range(r.read(h.embed_width)):
                embedded.append(
                    EmbeddedRecord(
                        u_id=h.id_table[r.read(h.id_index_bits)],
                        v_id=h.id_table[r.read(h.id_index_bits)],
                        forward=r.read(h.counter_width),
                        backward=r.read(h.counter_width),
                        payload=self._read_certificate(r),
                    )
                )
            if bit_length is not None and r.position != bit_length:
                raise CodecError(
                    f"trailing data: read {r.position} of {bit_length} bits"
                )
        except (BitStreamError, IndexError) as exc:
            raise CodecError(f"malformed label encoding: {exc}") from exc
        return Theorem1Label(
            certificate=certificate, embedded=tuple(embedded)
        )


def decode_labeling_columnar(encoded: EncodedLabeling) -> Labeling:
    """Decode a whole labeling with cross-edge structure sharing.

    Equal (``==``) to :meth:`EncodedLabeling.decode`'s result; differs
    only in object identity — shared sub-structure is decoded once and
    referenced everywhere it occurs.
    """
    decoder = ColumnarDecoder(encoded.header)
    mapping = {
        key: decoder.decode_label(e.data, e.bit_length)
        for key, e in encoded.labels.items()
    }
    return Labeling(
        location=encoded.location,
        mapping=mapping,
        size_context=encoded.header.size_context(),
    )
