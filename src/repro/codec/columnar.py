"""Columnar bulk codec: one interning pass over a whole labeling.

:meth:`EncodedLabeling.decode` rebuilds each edge's label independently,
so equal-content :class:`~repro.core.certificates.BasicInfo` and record
objects come back as *distinct* python objects — one fresh object graph
per edge even though certificates overwhelmingly share sub-structure
(the same tree node's info appears on every incident edge of its
subtree).  That costs decode time, resident memory, and — since PR 8 —
kernel compile time: the vectorized executors intern certificates by
content, and interning distinct-but-equal objects pays a deep dataclass
hash per occurrence where an identity hit would be a dict lookup.

This module decodes a labeling *columnarly*: every component is keyed
by the raw wire codes that encode it (infos by their code tuple,
pointers by their code tuple, records by component identities plus
scalars, certificate stacks by record-identity tuples) and constructed
exactly once.  Because interned sub-objects are unique per content, the
identity-based record and stack keys are content-faithful without ever
hashing a dataclass.  The result is ``==`` to the reference decode —
pinned by tier-1 tests — but maximally shared: the kernel compiler's
``id()`` memo then hits once per distinct certificate instead of once
per edge.

:class:`ColumnarEncoder` is the encode-direction twin (PR 10): instead
of running one pure-Python :class:`~repro.codec.bitio.BitWriter` loop
per label, it packs every field of every label into one flat
interleaved column of ``(payload << 6) | payload_bits`` integers —
memoizing each distinct info / record / certificate object's packed
run by identity, so shared sub-structure is walked once and replayed
as an O(1) list extend — and emits the whole labeling in a single
numpy pass (:meth:`~repro.codec.bitio.BitWriter.write_many`).  Each
label is zero-padded to a byte boundary inside the column (exactly the
padding :meth:`BitWriter.to_bytes` would emit), so the per-label byte
strings are *byte-identical* to
:func:`repro.codec.wire.encode_labeling` — property-tested in tier-1.
Any representability surprise (numpy missing, a field wider than the
57-bit packing limit, codec errors) falls back to the reference
encoder wholesale.
"""

from __future__ import annotations

from repro.core.certificates import (
    BasicInfo,
    BLevelRecord,
    EdgeCertificate,
    ELevelRecord,
    EmbeddedRecord,
    PLevelRecord,
    Theorem1Label,
    TLevelRecord,
)
from repro.codec.bitio import BitReader, BitStreamError, BitWriter
from repro.codec.bitio import _np
from repro.courcelle.algebra import canonical_state_repr
from repro.codec.wire import (
    _KIND_BITS,
    _KIND_CODES,
    _KIND_NAMES,
    CodecError,
    EncodedLabel,
    EncodedLabeling,
    WireHeader,
    _EncodeMemo,
    encode_labeling,
)
from repro.pls.pointer import PointerLabel
from repro.pls.scheme import Labeling


class ColumnarDecoder:
    """Shared interning state for one bulk decode (one header)."""

    __slots__ = ("header", "_infos", "_pointers", "_records", "_certs")

    def __init__(self, header: WireHeader):
        self.header = header
        self._infos = {}
        self._pointers = {}
        self._records = {}
        self._certs = {}

    # Raw-code readers: consume exactly the same bits as the reference
    # ``_decode_*`` functions, but intern before constructing.

    def _read_info(self, r: BitReader) -> BasicInfo:
        h = self.header
        kind_code = r.read(_KIND_BITS)
        if kind_code not in _KIND_NAMES:
            raise CodecError(f"invalid kind code {kind_code}")
        node_raw = r.read(h.node_width)
        mask = r.read(h.lane_bits)
        lane_count = bin(mask).count("1")
        in_codes = tuple(
            r.read(h.id_index_bits) for _ in range(lane_count)
        )
        out_codes = tuple(
            r.read(h.id_index_bits) for _ in range(lane_count)
        )
        state_code = r.read(h.class_bits)
        key = (kind_code, node_raw, mask, in_codes, out_codes, state_code)
        info = self._infos.get(key)
        if info is None:
            lanes = tuple(
                lane for lane in range(h.lane_bits) if mask & (1 << lane)
            )
            info = BasicInfo(
                kind=_KIND_NAMES[kind_code],
                node_id=node_raw - 1,
                lanes=lanes,
                in_ids=tuple(
                    (lane, h.id_table[code])
                    for lane, code in zip(lanes, in_codes)
                ),
                out_ids=tuple(
                    (lane, h.id_table[code])
                    for lane, code in zip(lanes, out_codes)
                ),
                state=h.states[state_code],
            )
            self._infos[key] = info
        return info

    def _read_pointer(self, r: BitReader) -> PointerLabel:
        h = self.header
        key = (
            r.read(h.id_index_bits),
            r.read(h.id_index_bits),
            r.read(h.counter_width),
            r.read(h.id_index_bits),
            r.read(h.counter_width),
        )
        pointer = self._pointers.get(key)
        if pointer is None:
            pointer = PointerLabel(
                target_id=h.id_table[key[0]],
                id_a=h.id_table[key[1]],
                dist_a=key[2],
                id_b=h.id_table[key[3]],
                dist_b=key[4],
            )
            self._pointers[key] = pointer
        return pointer

    def _read_record(self, r: BitReader):
        h = self.header
        info = self._read_info(r)
        if info.kind == "T":
            member_info = self._read_info(r)
            member_subtree = self._read_info(r)
            children = tuple(
                self._read_info(r) for _ in range(r.read(h.child_width))
            )
            pointer = self._read_pointer(r)
            root_raw = r.read(h.node_width)
            # Interned components are unique per content, so identity
            # keys are content keys — no dataclass hashing anywhere.
            key = (
                "T",
                id(info),
                id(member_info),
                id(member_subtree),
                tuple(id(child) for child in children),
                id(pointer),
                root_raw,
            )
            record = self._records.get(key)
            if record is None:
                record = TLevelRecord(
                    info=info,
                    member_info=member_info,
                    member_subtree=member_subtree,
                    child_subtrees=children,
                    pointer=pointer,
                    root_member_id=root_raw - 1,
                )
                self._records[key] = record
            return record
        if info.kind == "B":
            left = self._read_info(r)
            right = self._read_info(r)
            bridge = (r.read(h.lane_index_bits), r.read(h.lane_index_bits))
            tag_code = r.read(h.tag_bits)
            side_raw = r.read(2)
            key = (
                "B", id(info), id(left), id(right), bridge, tag_code,
                side_raw,
            )
            record = self._records.get(key)
            if record is None:
                record = BLevelRecord(
                    info=info,
                    left=left,
                    right=right,
                    bridge=bridge,
                    bridge_tag=h.tags[tag_code],
                    side=side_raw - 1,
                )
                self._records[key] = record
            return record
        if info.kind == "E":
            key = (
                "E",
                id(info),
                r.read(h.id_index_bits),
                r.read(h.id_index_bits),
                r.read(h.tag_bits),
            )
            record = self._records.get(key)
            if record is None:
                record = ELevelRecord(
                    info=info,
                    in_id=h.id_table[key[2]],
                    out_id=h.id_table[key[3]],
                    tag=h.tags[key[4]],
                )
                self._records[key] = record
            return record
        if info.kind == "P":
            id_codes = tuple(
                r.read(h.id_index_bits)
                for _ in range(r.read(h.path_width))
            )
            tag_codes = tuple(
                r.read(h.tag_bits) for _ in range(r.read(h.path_width))
            )
            position = r.read(h.counter_width)
            key = ("P", id(info), id_codes, tag_codes, position)
            record = self._records.get(key)
            if record is None:
                record = PLevelRecord(
                    info=info,
                    vertex_ids=tuple(
                        h.id_table[code] for code in id_codes
                    ),
                    tags=tuple(h.tags[code] for code in tag_codes),
                    position=position,
                )
                self._records[key] = record
            return record
        raise CodecError(
            f"record cannot start with a {info.kind!r} node info"
        )

    def _read_certificate(self, r: BitReader) -> EdgeCertificate:
        depth = r.read(self.header.depth_width)
        if depth < 1:
            raise CodecError("certificate stack cannot be empty")
        records = tuple(self._read_record(r) for _ in range(depth))
        key = tuple(id(record) for record in records)
        cert = self._certs.get(key)
        if cert is None:
            cert = EdgeCertificate(records)
            self._certs[key] = cert
        return cert

    def decode_label(self, data: bytes, bit_length=None) -> Theorem1Label:
        """Interning twin of :func:`repro.codec.wire.decode_label`."""
        h = self.header
        try:
            r = BitReader(data, bit_length)
            certificate = self._read_certificate(r)
            embedded = []
            for _ in range(r.read(h.embed_width)):
                embedded.append(
                    EmbeddedRecord(
                        u_id=h.id_table[r.read(h.id_index_bits)],
                        v_id=h.id_table[r.read(h.id_index_bits)],
                        forward=r.read(h.counter_width),
                        backward=r.read(h.counter_width),
                        payload=self._read_certificate(r),
                    )
                )
            if bit_length is not None and r.position != bit_length:
                raise CodecError(
                    f"trailing data: read {r.position} of {bit_length} bits"
                )
        except (BitStreamError, IndexError) as exc:
            raise CodecError(f"malformed label encoding: {exc}") from exc
        return Theorem1Label(
            certificate=certificate, embedded=tuple(embedded)
        )


def decode_labeling_columnar(encoded: EncodedLabeling) -> Labeling:
    """Decode a whole labeling with cross-edge structure sharing.

    Equal (``==``) to :meth:`EncodedLabeling.decode`'s result; differs
    only in object identity — shared sub-structure is decoded once and
    referenced everywhere it occurs.
    """
    decoder = ColumnarDecoder(encoded.header)
    mapping = {
        key: decoder.decode_label(e.data, e.bit_length)
        for key, e in encoded.labels.items()
    }
    return Labeling(
        location=encoded.location,
        mapping=mapping,
        size_context=encoded.header.size_context(),
    )


_PACK_LIMIT = 57  # max payload bits per interleaved column entry


def _pack_fields(values, widths, out) -> int:
    """Validate and pack raw ``(value, width)`` fields into ``out``.

    Each appended entry interleaves up to 57 payload bits with the
    entry's own bit count in one non-negative ``int64``-sized integer:
    ``(payload << 6) | payload_bits``.  Splitting points are invisible
    on the wire — concatenating the entries' payloads MSB-first yields
    exactly the raw field sequence — so any grouping preserves byte
    identity.  Returns the total payload bit count.  Raises
    :class:`BitStreamError` on a value/width mismatch (mirroring
    :meth:`BitWriter.write`) and :class:`CodecError` for a single field
    wider than the packing limit (the caller falls back to the
    reference encoder).
    """
    acc = 0
    bits = 0
    total = 0
    for v, w in zip(values, widths):
        if v < 0 or v >> w:
            raise BitStreamError(f"value {v} does not fit in {w} bits")
        if bits + w > _PACK_LIMIT:
            if bits:
                out.append((acc << 6) | bits)
                acc = 0
                bits = 0
            if w > _PACK_LIMIT:
                raise CodecError(
                    f"{w}-bit field exceeds the bulk packing limit"
                )
        acc = (acc << w) | v
        bits += w
        total += w
    if bits:
        out.append((acc << 6) | bits)
    return total


class ColumnarEncoder:
    """Shared interning state for one bulk encode (one header).

    Mirrors the reference ``_encode_*`` functions field-for-field, but
    instead of writing bits eagerly it packs fields into one flat
    interleaved column (:func:`_pack_fields`).  Each distinct info /
    record / certificate object's packed run is built once (keyed by
    identity, like ``_EncodeMemo``) and replayed by list extension, so
    a certificate shared by a thousand edges is walked exactly once and
    replays as a handful of integer appends.
    """

    __slots__ = (
        "header",
        "_memo",
        "_runs",
        "_record_runs",
        "_cert_runs",
        "_tails",
        "_t_tail_widths",
        "_b_widths",
        "_e_widths",
        "_b_total",
        "_e_total",
        "_info_widths",
        "_w_id",
        "_w_class",
        "_w_tag",
        "_w_lane_index",
        "_ids",
        "_tag_index",
        "_state_index",
        "_state_codes",
        "_canonical",
    )

    def __init__(self, header: WireHeader, memo=None):
        self.header = header
        # Only the canonical-state cache of the reference memo is used;
        # holding one keeps ``state_code`` lookups identical.
        self._memo = memo if memo is not None else _EncodeMemo()
        self._canonical = self._memo.canonical
        # Identity-keyed packed runs (see _pack_fields for the entry
        # format).  id(info) / id(record) / id(cert) -> (obj, packed
        # tuple, payload bits).  Element 0 pins the keyed object so the
        # id() key stays valid for the cache's lifetime.
        self._runs = {}
        self._record_runs = {}
        self._cert_runs = {}
        # pad width -> the shared "no embedded records" label tail.
        self._tails = {}
        # The derived widths are recomputed properties on the header;
        # the bulk walk touches them per field, so snapshot them once —
        # likewise the raw lookup dicts behind id/tag/state_code.
        self._w_id = header.id_index_bits
        self._w_class = header.class_bits
        self._w_tag = header.tag_bits
        self._w_lane_index = header.lane_index_bits
        self._ids = header._lookup("_id_index", header.id_table, lambda x: x)
        self._tag_index = header._lookup("_tag_index", header.tags, repr)
        self._state_index = header._lookup(
            "_state_index", header.states, canonical_state_repr
        )
        # id(state) -> (state, code): resolves each distinct state
        # object's class index exactly once per encoder.
        self._state_codes = {}
        cw = header.counter_width
        # Fixed scalar-field width patterns (pointer + root id tail of a
        # T record; the B and E scalar groups).
        self._t_tail_widths = (
            self._w_id,
            self._w_id,
            cw,
            self._w_id,
            cw,
            header.node_width,
        )
        self._b_widths = (
            self._w_lane_index,
            self._w_lane_index,
            self._w_tag,
            2,
        )
        self._e_widths = (self._w_id, self._w_id, self._w_tag)
        # Inline fast-path totals for the fixed scalar groups: usable
        # only when the whole group fits one packed entry.
        e_total = sum(self._e_widths)
        self._e_total = e_total if e_total <= _PACK_LIMIT else None
        b_total = sum(self._b_widths)
        self._b_total = b_total if b_total <= _PACK_LIMIT else None
        # number of id fields -> the info width pattern.
        self._info_widths = {}

    # -- field-run builders (same order as the reference encoders) ----
    def _info_run(self, info):
        """``(info, packed tuple, payload bits)``, cached by identity."""
        hit = self._runs.get(id(info))
        if hit is None:
            kind_code = _KIND_CODES.get(info.kind)
            if kind_code is None:
                raise CodecError(f"unknown node kind {info.kind!r}")
            mask = 0
            for lane in info.lanes:
                mask |= 1 << lane
            ids = self._ids
            state = info.state
            codes = self._state_codes
            chit = codes.get(id(state))
            if chit is None:
                chit = (state, self._state_index[self._canonical(state)])
                codes[id(state)] = chit
            vals = [kind_code, info.node_id + 1, mask]
            vals += [ids[x] for _lane, x in info.in_ids]
            vals += [ids[x] for _lane, x in info.out_ids]
            vals.append(chit[1])
            id_fields = len(info.in_ids) + len(info.out_ids)
            widths = self._info_widths.get(id_fields)
            if widths is None:
                h = self.header
                widths = (
                    (_KIND_BITS, h.node_width, h.lane_bits)
                    + (self._w_id,) * id_fields
                    + (self._w_class,)
                )
                self._info_widths[id_fields] = widths
            out = []
            bits = _pack_fields(vals, widths, out)
            hit = (info, tuple(out), bits)
            self._runs[id(info)] = hit
        return hit

    def _build_record(self, record, out) -> int:
        """Append ``record``'s packed run to ``out``; return its bits."""
        h = self.header
        runs = self._runs
        info_run = self._info_run
        info = record.info
        hit = runs.get(id(info)) or info_run(info)
        out += hit[1]
        bits = hit[2]
        if isinstance(record, TLevelRecord):
            info = record.member_info
            hit = runs.get(id(info)) or info_run(info)
            out += hit[1]
            bits += hit[2]
            info = record.member_subtree
            hit = runs.get(id(info)) or info_run(info)
            out += hit[1]
            bits += hit[2]
            count = len(record.child_subtrees)
            width = h.child_width
            if count >> width or width > _PACK_LIMIT:
                _pack_fields((count,), (width,), out)  # raise as generic
            out.append((count << 6) | width)
            bits += width
            for child in record.child_subtrees:
                hit = runs.get(id(child)) or info_run(child)
                out += hit[1]
                bits += hit[2]
            pointer = record.pointer
            ids = self._ids
            bits += _pack_fields(
                (
                    ids[pointer.target_id],
                    ids[pointer.id_a],
                    pointer.dist_a,
                    ids[pointer.id_b],
                    pointer.dist_b,
                    record.root_member_id + 1,
                ),
                self._t_tail_widths,
                out,
            )
        elif isinstance(record, BLevelRecord):
            info = record.left
            hit = runs.get(id(info)) or info_run(info)
            out += hit[1]
            bits += hit[2]
            info = record.right
            hit = runs.get(id(info)) or info_run(info)
            out += hit[1]
            bits += hit[2]
            i, j = record.bridge
            tag = self._tag_index[repr(record.bridge_tag)]
            side = record.side + 1
            total = self._b_total
            w_lane = self._w_lane_index
            w_tag = self._w_tag
            if (
                total is None
                or i < 0
                or i >> w_lane
                or j < 0
                or j >> w_lane
                or side < 0
                or side >> 2
            ):
                bits += _pack_fields(
                    (i, j, tag, side), self._b_widths, out
                )
            else:
                out.append(
                    ((((i << w_lane | j) << w_tag | tag) << 2 | side) << 6)
                    | total
                )
                bits += total
        elif isinstance(record, ELevelRecord):
            ids = self._ids
            a = ids[record.in_id]
            b = ids[record.out_id]
            tag = self._tag_index[repr(record.tag)]
            total = self._e_total
            w_id = self._w_id
            w_tag = self._w_tag
            if total is None or tag >> w_tag:
                bits += _pack_fields(
                    (a, b, tag), self._e_widths, out
                )
            else:
                out.append(
                    (((a << w_id | b) << w_tag | tag) << 6) | total
                )
                bits += total
        elif isinstance(record, PLevelRecord):
            ids = self._ids
            tag_index = self._tag_index
            vals = [len(record.vertex_ids)]
            vals += [ids[x] for x in record.vertex_ids]
            vals.append(len(record.tags))
            vals += [tag_index[repr(tag)] for tag in record.tags]
            vals.append(record.position)
            widths = (
                (h.path_width,)
                + (self._w_id,) * len(record.vertex_ids)
                + (h.path_width,)
                + (self._w_tag,) * len(record.tags)
                + (h.counter_width,)
            )
            bits += _pack_fields(vals, widths, out)
        else:
            raise CodecError(
                f"unknown record type {type(record).__name__}"
            )
        return bits

    def _record_run(self, record):
        """``(record, packed tuple, payload bits)``, cached."""
        hit = self._record_runs.get(id(record))
        if hit is None:
            out = []
            bits = self._build_record(record, out)
            hit = (record, tuple(out), bits)
            self._record_runs[id(record)] = hit
        return hit

    def _cert_run(self, cert):
        """One certificate's full run: depth field + stacked records.

        Assembled by replaying the member records' cached packed runs —
        record stacks share suffixes aggressively (the builder's
        stack-sharing), so each distinct record's Python fields are
        touched exactly once per encode and a certificate replays as a
        single small tuple extend.
        """
        hit = self._cert_runs.get(id(cert))
        if hit is None:
            out = []
            depth = len(cert.stack)
            width = self.header.depth_width
            if depth >> width or width > _PACK_LIMIT:
                _pack_fields((depth,), (width,), out)  # raise as generic
            out.append((depth << 6) | width)
            bits = width
            record_runs = self._record_runs
            record_run = self._record_run
            for record in cert.stack:
                rhit = record_runs.get(id(record)) or record_run(record)
                out += rhit[1]
                bits += rhit[2]
            hit = (cert, tuple(out), bits)
            self._cert_runs[id(cert)] = hit
        return hit

    # ------------------------------------------------------------------
    def encode(self, labeling: Labeling) -> EncodedLabeling:
        """Bulk-encode ``labeling`` against this encoder's header."""
        h = self.header
        counter_width = h.counter_width
        embed_width = h.embed_width
        w_id = self._w_id
        ids = self._ids
        column = []
        keys = []
        bit_lengths = []
        byte_counts = []
        cert_runs = self._cert_runs
        cert_run = self._cert_run
        tails = self._tails
        embed_widths = (w_id, w_id, counter_width, counter_width)
        embed_total = 2 * w_id + 2 * counter_width
        if embed_total > _PACK_LIMIT:
            embed_total = None
        for key, label in labeling.mapping.items():
            if not isinstance(label, Theorem1Label):
                raise CodecError(
                    f"expected a Theorem1Label, got {type(label).__name__}"
                )
            keys.append(key)
            cert = label.certificate
            chit = cert_runs.get(id(cert)) or cert_run(cert)
            column += chit[1]
            bits = chit[2]
            if label.embedded:
                count = len(label.embedded)
                if count >> embed_width or embed_width > _PACK_LIMIT:
                    _pack_fields((count,), (embed_width,), column)
                column.append((count << 6) | embed_width)
                bits += embed_width
                for record in label.embedded:
                    fwd = record.forward
                    bwd = record.backward
                    if (
                        embed_total is None
                        or fwd < 0
                        or fwd >> counter_width
                        or bwd < 0
                        or bwd >> counter_width
                    ):
                        bits += _pack_fields(
                            (
                                ids[record.u_id],
                                ids[record.v_id],
                                fwd,
                                bwd,
                            ),
                            embed_widths,
                            column,
                        )
                    else:
                        column.append(
                            (
                                (
                                    (
                                        (ids[record.u_id] << w_id)
                                        | ids[record.v_id]
                                    )
                                    << counter_width
                                    | fwd
                                )
                                << counter_width
                                | bwd
                            )
                            << 6
                            | embed_total
                        )
                        bits += embed_total
                    payload = record.payload
                    phit = cert_runs.get(id(payload)) or cert_run(payload)
                    column += phit[1]
                    bits += phit[2]
                pad = -bits % 8
                if pad:
                    # The zero padding BitWriter.to_bytes() appends:
                    # every label starts byte-aligned in the column
                    # (packed entry: payload 0, ``pad`` payload bits).
                    column.append(pad)
            else:
                bits += embed_width
                pad = -bits % 8
                tail = tails.get(pad)
                if tail is None:
                    grow = []
                    _pack_fields((0,), (embed_width,), grow)
                    if pad:
                        grow.append(pad)
                    tail = tuple(grow)
                    tails[pad] = tail
                column += tail
            bit_lengths.append(bits)
            byte_counts.append((bits + (-bits % 8)) // 8)
        writer = BitWriter()
        if column:
            col = _np.fromiter(column, _np.int64, len(column))
            writer.write_many(col >> 6, col & 63)
        data = writer.to_bytes()
        labels = {}
        offset = 0
        for key, bits, nbytes in zip(keys, bit_lengths, byte_counts):
            labels[key] = EncodedLabel(
                data=data[offset:offset + nbytes], bit_length=bits
            )
            offset += nbytes
        return EncodedLabeling(
            header=self.header, labels=labels, location=labeling.location
        )


def encode_labeling_columnar(labeling: Labeling, header=None):
    """Bulk twin of :func:`repro.codec.wire.encode_labeling`.

    Byte-identical output (same header, same per-label bytes and bit
    lengths); the only difference is cost — one interned field-column
    pass plus a single vectorized packing instead of a per-label bit
    loop.  Falls back to the reference encoder wholesale when numpy is
    unavailable or the labeling trips anything the bulk path cannot
    represent (so callers never need to care which path ran).
    """
    if _np is None:
        return encode_labeling(labeling, header)
    try:
        memo = _EncodeMemo()
        built = header
        if built is None:
            built = WireHeader.for_labeling(labeling, memo)
        return ColumnarEncoder(built, memo).encode(labeling)
    except Exception:
        return encode_labeling(labeling, header)
