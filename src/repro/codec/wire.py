"""The versioned certificate wire format (v1).

This module turns a :class:`~repro.core.certificates.Theorem1Label` into
an actual byte string and back, making the encoded form — not the Python
object graph — the ground truth for every size claim.  The full field
layout is specified in ``docs/FORMAT.md``; the short version:

* A :class:`WireHeader` is built once per labeling.  It carries the
  shared knowledge the paper's model grants both parties (the network
  size ``n``, the homomorphism-class table — prover and verifier share
  the algebra, so classes are shipped as ``ceil(log2 |C|)``-bit indices
  exactly as the :class:`~repro.pls.bits.ClassIndexer` accounts them),
  plus the dictionaries and field widths the decoder needs: the
  identifier table, tag table, lane-mask width, and the widths of every
  counter-like field.
* Each label is encoded against that header by :func:`encode_label` as a
  stand-alone MSB-first bit string: the ownership-path record stack,
  then the embedded virtual-edge records.  :func:`decode_label` inverts
  it exactly — ``decode(encode(label)) == label`` is a tier-1 property
  test, not an aspiration.
* :func:`encode_labeling` encodes a whole
  :class:`~repro.pls.scheme.Labeling` and reports *measured* sizes (the
  exact bit counts of the encodings, padding excluded), which
  :class:`~repro.api.results.CertificationReport` now quotes instead of
  the arithmetic estimate of ``label_bits``.  The measured figure is
  asserted ``<=`` the accounted one in the tier-1 suite.

Identifier fields deserve a note.  The simulator draws identifiers from
a ``2^32`` universe to model adversarial freedom, while the paper (and
the accounting in :mod:`repro.pls.bits`) treats them as Θ(log n)-bit
values.  The wire format reconciles the two the same way the class
indexer does: the header carries the sorted table of identifiers that
actually occur, and labels store ``ceil(log2 |table|)``-bit indices —
never more than the accounted ``id_bits``.  Decoding restores the exact
32-bit values, so round-trips are lossless.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.core.certificates import (
    BasicInfo,
    BLevelRecord,
    EdgeCertificate,
    ELevelRecord,
    EmbeddedRecord,
    PLevelRecord,
    Theorem1Label,
    TLevelRecord,
)
from repro.courcelle.algebra import canonical_state_repr
from repro.pls.bits import SizeContext
from repro.pls.pointer import PointerLabel
from repro.pls.scheme import Labeling

from repro.codec.bitio import (
    BitReader,
    BitStreamError,
    BitWriter,
    width_for,
    width_for_value,
)

#: Current wire-format version; bumped on any layout change (FORMAT.md
#: records the versioning rules).
WIRE_VERSION = 1

#: 3-bit node-kind codes, shared with the ``_KIND_BITS`` accounting.
_KIND_CODES = {"V": 0, "E": 1, "P": 2, "B": 3, "T": 4}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}
_KIND_BITS = 3


class CodecError(ValueError):
    """Raised on labels the format cannot carry or malformed streams."""


# ----------------------------------------------------------------------
# Identity-keyed memoization for one encode pass.
#
# The prover shares certificate sub-objects aggressively: one
# ``BasicInfo`` appears in every record stack that passes over its
# hierarchy node (measured: ~18 references per unique info on a
# 128-vertex labeling), and whole ``EdgeCertificate`` stacks recur as
# embedded payloads.  Without memoization the collector re-validates
# and the encoder re-serializes each shared object once per reference —
# the canonical-state recursion alone dominates ``encode_labeling``.
# Keying on ``id()`` is sound here because every memo value keeps a
# strong reference to its key object (no id reuse while the memo
# lives), the object graph is immutable during the pass, and the memo
# never outlives the pass.  Output is bit-identical to the direct path.
# ----------------------------------------------------------------------
class _EncodeMemo:
    """Per-pass caches shared by the collector and the encoder."""

    __slots__ = ("canon", "runs", "seen")

    def __init__(self):
        self.canon = {}  # id(state) -> (state, canonical_state_repr)
        self.runs = {}  # id(obj)   -> (obj, combined value, bit width)
        self.seen = {}  # id(obj)   -> obj   (collector visited set)

    def canonical(self, state) -> str:
        hit = self.canon.get(id(state))
        if hit is None:
            hit = (state, canonical_state_repr(state))
            self.canon[id(state)] = hit
        return hit[1]


class _FieldRun:
    """Accumulates fixed-width fields into one combined (value, width).

    Quacks like :class:`~repro.codec.bitio.BitWriter` for the encoding
    helpers, but keeps the bits as a single big-endian integer so the
    run can be replayed into a real writer with one ``write`` call.
    """

    __slots__ = ("value", "width")

    def __init__(self):
        self.value = 0
        self.width = 0

    def write(self, value: int, width: int) -> None:
        if width < 0:
            raise BitStreamError("field width must be non-negative")
        if value < 0 or value >> width:
            raise BitStreamError(
                f"value {value} does not fit in {width} bits"
            )
        self.value = (self.value << width) | value
        self.width += width


# ----------------------------------------------------------------------
# Header construction: one traversal collects every dictionary and the
# maximum value of every counter-like field.
# ----------------------------------------------------------------------
class _Collector:
    """Accumulates the header dictionaries from a deterministic walk."""

    def __init__(self, memo: "Optional[_EncodeMemo]" = None):
        self._memo = memo
        self.ids = set()
        self.states = []  # first-seen order
        self._state_index = {}  # repr(state) -> index
        self.tags = []
        self._tag_index = {}
        self.max_lane = 0
        self.max_node_id = 0  # of node_id + 1 (node_id may be -1)
        self.max_counter = 0
        self.max_depth = 0
        self.max_embedded = 0
        self.max_path = 0
        self.max_children = 0

    def counter(self, value: int) -> None:
        if value < 0:
            raise CodecError(f"counter field cannot be negative ({value})")
        self.max_counter = max(self.max_counter, value)

    def tag(self, tag) -> None:
        key = repr(tag)
        if key not in self._tag_index:
            self._tag_index[key] = len(self.tags)
            self.tags.append(tag)

    def info(self, info: BasicInfo) -> None:
        if self._memo is not None:
            # A revisit contributes the same maxima and dictionary
            # entries again — skipping it is a pure no-op.
            if id(info) in self._memo.seen:
                return
            self._memo.seen[id(info)] = info
        if info.kind not in _KIND_CODES:
            raise CodecError(f"unknown node kind {info.kind!r}")
        if info.node_id < -1:
            raise CodecError(f"node id {info.node_id} below -1")
        self.max_node_id = max(self.max_node_id, info.node_id + 1)
        lanes = info.lanes
        if tuple(sorted(set(lanes))) != tuple(lanes):
            raise CodecError(f"lane set {lanes!r} is not sorted and distinct")
        if lanes:
            if lanes[0] < 0:
                raise CodecError(f"negative lane number in {lanes!r}")
            self.max_lane = max(self.max_lane, lanes[-1])
        for ids in (info.in_ids, info.out_ids):
            if tuple(lane for lane, _x in ids) != lanes:
                raise CodecError(
                    "terminal identifiers must list exactly the lane set "
                    f"in order (lanes {lanes!r}, got {ids!r})"
                )
            for _lane, x in ids:
                self.ids.add(x)
        # Canonical form, not raw repr: states that crossed a process
        # boundary (pool-resident per-property proving) must dedupe into
        # the same dictionary slot as their locally built equals.
        if self._memo is not None:
            key = self._memo.canonical(info.state)
        else:
            key = canonical_state_repr(info.state)
        if key not in self._state_index:
            self._state_index[key] = len(self.states)
            self.states.append(info.state)

    def pointer(self, pointer: PointerLabel) -> None:
        self.ids.update((pointer.target_id, pointer.id_a, pointer.id_b))
        self.counter(pointer.dist_a)
        self.counter(pointer.dist_b)

    def record(self, record) -> None:
        if self._memo is not None:
            if id(record) in self._memo.seen:
                return
            self._memo.seen[id(record)] = record
        self.info(record.info)
        if isinstance(record, TLevelRecord):
            if record.info.kind != "T":
                raise CodecError("T record with non-T basic info")
            self.info(record.member_info)
            self.info(record.member_subtree)
            self.max_children = max(
                self.max_children, len(record.child_subtrees)
            )
            for child in record.child_subtrees:
                self.info(child)
            self.pointer(record.pointer)
            self.max_node_id = max(self.max_node_id, record.root_member_id + 1)
        elif isinstance(record, BLevelRecord):
            if record.info.kind != "B":
                raise CodecError("B record with non-B basic info")
            self.info(record.left)
            self.info(record.right)
            i, j = record.bridge
            if i < 0 or j < 0:
                raise CodecError(f"negative bridge lane in {record.bridge!r}")
            self.max_lane = max(self.max_lane, i, j)
            self.tag(record.bridge_tag)
            if record.side not in (-1, 0, 1):
                raise CodecError(f"bridge side {record.side!r} out of range")
        elif isinstance(record, ELevelRecord):
            if record.info.kind != "E":
                raise CodecError("E record with non-E basic info")
            self.ids.update((record.in_id, record.out_id))
            self.tag(record.tag)
        elif isinstance(record, PLevelRecord):
            if record.info.kind != "P":
                raise CodecError("P record with non-P basic info")
            self.ids.update(record.vertex_ids)
            self.max_path = max(
                self.max_path, len(record.vertex_ids), len(record.tags)
            )
            for tag in record.tags:
                self.tag(tag)
            self.counter(record.position)
        else:
            raise CodecError(
                f"unknown record type {type(record).__name__}"
            )

    def certificate(self, cert: EdgeCertificate) -> None:
        if self._memo is not None:
            if id(cert) in self._memo.seen:
                return
            self._memo.seen[id(cert)] = cert
        if not cert.stack:
            raise CodecError("empty certificate stack")
        self.max_depth = max(self.max_depth, len(cert.stack))
        for record in cert.stack:
            self.record(record)

    def label(self, label) -> None:
        if not isinstance(label, Theorem1Label):
            raise CodecError(
                "the v1 wire format carries Theorem1Label certificates "
                f"only (got {type(label).__name__})"
            )
        self.certificate(label.certificate)
        self.max_embedded = max(self.max_embedded, len(label.embedded))
        for record in label.embedded:
            self.ids.update((record.u_id, record.v_id))
            self.counter(record.forward)
            self.counter(record.backward)
            self.certificate(record.payload)


@dataclass(frozen=True)
class WireHeader:
    """Shared decoding context for one encoded labeling (format v1).

    The header is the out-of-band half of the format: dictionaries
    (identifiers, homomorphism-class states, edge tags) plus the field
    widths every label is encoded against.  It is *not* charged to the
    per-label bit counts — it models the shared knowledge of the PLS
    setting (the algebra, hence the class set, and the network size),
    and the identifier dictionary replaces each Θ(log n)-bit identifier
    field with an index of at most the same width (see module docstring).
    """

    version: int
    #: Network size and identifier-universe width (rebuild SizeContext).
    n: int
    universe_bits: int
    #: Class count declared by the prover's indexer (>= ``len(states)``).
    class_count: int
    #: Sorted table of the raw vertex identifiers that occur.
    id_table: tuple
    #: Homomorphism-class states in first-seen order (index = wire code).
    states: tuple
    #: Edge-tag dictionary in first-seen order.
    tags: tuple
    #: Lane bitmask width (max lane number + 1).
    lane_bits: int
    #: Field widths (bits) for the counter-like fields.
    node_width: int
    counter_width: int
    depth_width: int
    embed_width: int
    path_width: int
    child_width: int

    # Derived lookup tables (not part of equality/serialized state).
    _id_index: dict = field(
        default=None, repr=False, compare=False, hash=False
    )
    _state_index: dict = field(
        default=None, repr=False, compare=False, hash=False
    )
    _tag_index: dict = field(
        default=None, repr=False, compare=False, hash=False
    )

    # ------------------------------------------------------------------
    @classmethod
    def for_labeling(
        cls,
        labeling: Labeling,
        memo: "Optional[_EncodeMemo]" = None,
    ) -> "WireHeader":
        """Build the header for one labeling's label set."""
        if labeling.location != "edges":
            raise CodecError(
                "the wire format carries edge labelings "
                f"(got location={labeling.location!r})"
            )
        collector = _Collector(memo)
        for key in sorted(labeling.mapping, key=repr):
            collector.label(labeling.mapping[key])
        ctx = labeling.size_context
        class_count = max(
            getattr(ctx, "class_count", 1), len(collector.states), 1
        )
        return cls(
            version=WIRE_VERSION,
            n=ctx.n,
            universe_bits=getattr(ctx, "universe_bits", 32),
            class_count=class_count,
            id_table=tuple(sorted(collector.ids)),
            states=tuple(collector.states),
            tags=tuple(collector.tags),
            lane_bits=max(1, collector.max_lane + 1),
            node_width=width_for_value(collector.max_node_id),
            counter_width=max(
                width_for_value(max(ctx.n, collector.max_counter)), 1
            ),
            depth_width=width_for_value(max(collector.max_depth, 1)),
            embed_width=width_for_value(max(collector.max_embedded, 1)),
            path_width=width_for_value(max(collector.max_path, 1)),
            child_width=width_for_value(max(collector.max_children, 1)),
        )

    def __post_init__(self):
        if self.version != WIRE_VERSION:
            raise CodecError(
                f"unsupported wire format version {self.version} "
                f"(this build speaks v{WIRE_VERSION})"
            )

    # -- derived widths and lookups ------------------------------------
    @property
    def id_index_bits(self) -> int:
        """Width of one identifier-dictionary index field."""
        return width_for(len(self.id_table))

    @property
    def class_bits(self) -> int:
        """Width of one homomorphism-class index field."""
        return width_for(len(self.states))

    @property
    def tag_bits(self) -> int:
        """Width of one edge-tag index field."""
        return width_for(len(self.tags))

    @property
    def lane_index_bits(self) -> int:
        """Width of one bridge-lane number field."""
        return width_for(self.lane_bits)

    def _lookup(self, attr, table, key_of):
        cache = getattr(self, attr)
        if cache is None:
            cache = {key_of(item): i for i, item in enumerate(table)}
            object.__setattr__(self, attr, cache)
        return cache

    def id_code(self, identifier) -> int:
        try:
            return self._lookup("_id_index", self.id_table, lambda x: x)[
                identifier
            ]
        except KeyError:
            raise CodecError(
                f"identifier {identifier!r} is not in the header table"
            ) from None

    def state_code(self, state, memo: "Optional[_EncodeMemo]" = None) -> int:
        key = (
            memo.canonical(state)
            if memo is not None
            else canonical_state_repr(state)
        )
        try:
            return self._lookup(
                "_state_index", self.states, canonical_state_repr
            )[key]
        except KeyError:
            raise CodecError(
                "homomorphism-class state is not in the header table"
            ) from None

    def tag_code(self, tag) -> int:
        try:
            return self._lookup("_tag_index", self.tags, repr)[repr(tag)]
        except KeyError:
            raise CodecError(f"tag {tag!r} is not in the header table") from None

    def size_context(self) -> SizeContext:
        """Rebuild the accounting context the labeling was sized under."""
        return SizeContext(
            self.n, self.universe_bits, class_count=self.class_count
        )


# ----------------------------------------------------------------------
# Encoding.
# ----------------------------------------------------------------------
def _memoized(memo, obj, w, encode_direct) -> None:
    """Replay ``obj``'s combined bit run, computing it on first sight."""
    hit = memo.runs.get(id(obj))
    if hit is None:
        run = _FieldRun()
        encode_direct(run)
        hit = (obj, run.value, run.width)
        memo.runs[id(obj)] = hit
    w.write(hit[1], hit[2])


def _encode_info(
    w, info: BasicInfo, h: WireHeader, memo: Optional[_EncodeMemo] = None
) -> None:
    if memo is not None:
        _memoized(
            memo, info, w, lambda run: _encode_info_direct(run, info, h, memo)
        )
        return
    _encode_info_direct(w, info, h, None)


def _encode_info_direct(
    w, info: BasicInfo, h: WireHeader, memo: Optional[_EncodeMemo]
) -> None:
    w.write(_KIND_CODES[info.kind], _KIND_BITS)
    w.write(info.node_id + 1, h.node_width)
    mask = 0
    for lane in info.lanes:
        mask |= 1 << lane
    w.write(mask, h.lane_bits)
    for ids in (info.in_ids, info.out_ids):
        for _lane, x in ids:
            w.write(h.id_code(x), h.id_index_bits)
    w.write(h.state_code(info.state, memo), h.class_bits)


def _encode_pointer(w: BitWriter, p: PointerLabel, h: WireHeader) -> None:
    w.write(h.id_code(p.target_id), h.id_index_bits)
    w.write(h.id_code(p.id_a), h.id_index_bits)
    w.write(p.dist_a, h.counter_width)
    w.write(h.id_code(p.id_b), h.id_index_bits)
    w.write(p.dist_b, h.counter_width)


def _encode_record(
    w, record, h: WireHeader, memo: Optional[_EncodeMemo] = None
) -> None:
    if memo is not None:
        _memoized(
            memo,
            record,
            w,
            lambda run: _encode_record_direct(run, record, h, memo),
        )
        return
    _encode_record_direct(w, record, h, None)


def _encode_record_direct(
    w, record, h: WireHeader, memo: Optional[_EncodeMemo]
) -> None:
    _encode_info(w, record.info, h, memo)
    if isinstance(record, TLevelRecord):
        _encode_info(w, record.member_info, h, memo)
        _encode_info(w, record.member_subtree, h, memo)
        w.write(len(record.child_subtrees), h.child_width)
        for child in record.child_subtrees:
            _encode_info(w, child, h, memo)
        _encode_pointer(w, record.pointer, h)
        w.write(record.root_member_id + 1, h.node_width)
    elif isinstance(record, BLevelRecord):
        _encode_info(w, record.left, h, memo)
        _encode_info(w, record.right, h, memo)
        i, j = record.bridge
        w.write(i, h.lane_index_bits)
        w.write(j, h.lane_index_bits)
        w.write(h.tag_code(record.bridge_tag), h.tag_bits)
        w.write(record.side + 1, 2)
    elif isinstance(record, ELevelRecord):
        w.write(h.id_code(record.in_id), h.id_index_bits)
        w.write(h.id_code(record.out_id), h.id_index_bits)
        w.write(h.tag_code(record.tag), h.tag_bits)
    elif isinstance(record, PLevelRecord):
        w.write(len(record.vertex_ids), h.path_width)
        for x in record.vertex_ids:
            w.write(h.id_code(x), h.id_index_bits)
        w.write(len(record.tags), h.path_width)
        for tag in record.tags:
            w.write(h.tag_code(tag), h.tag_bits)
        w.write(record.position, h.counter_width)
    else:
        raise CodecError(f"unknown record type {type(record).__name__}")


def _encode_certificate(
    w,
    cert: EdgeCertificate,
    h: WireHeader,
    memo: Optional[_EncodeMemo] = None,
):
    if memo is not None:
        _memoized(
            memo,
            cert,
            w,
            lambda run: _encode_certificate_direct(run, cert, h, memo),
        )
        return
    _encode_certificate_direct(w, cert, h, None)


def _encode_certificate_direct(
    w, cert: EdgeCertificate, h: WireHeader, memo: Optional[_EncodeMemo]
):
    w.write(len(cert.stack), h.depth_width)
    for record in cert.stack:
        _encode_record(w, record, h, memo)


@dataclass(frozen=True)
class EncodedLabel:
    """One label's wire encoding: the bytes and the exact bit count."""

    data: bytes
    bit_length: int


def encode_label(
    label: Theorem1Label,
    header: WireHeader,
    memo: Optional[_EncodeMemo] = None,
) -> EncodedLabel:
    """Encode one physical label against ``header``."""
    if not isinstance(label, Theorem1Label):
        raise CodecError(
            f"expected a Theorem1Label, got {type(label).__name__}"
        )
    w = BitWriter()
    _encode_certificate(w, label.certificate, header, memo)
    w.write(len(label.embedded), header.embed_width)
    for record in label.embedded:
        w.write(header.id_code(record.u_id), header.id_index_bits)
        w.write(header.id_code(record.v_id), header.id_index_bits)
        w.write(record.forward, header.counter_width)
        w.write(record.backward, header.counter_width)
        _encode_certificate(w, record.payload, header, memo)
    return EncodedLabel(data=w.to_bytes(), bit_length=w.bit_length)


# ----------------------------------------------------------------------
# Decoding.
# ----------------------------------------------------------------------
def _decode_info(r: BitReader, h: WireHeader) -> BasicInfo:
    kind_code = r.read(_KIND_BITS)
    if kind_code not in _KIND_NAMES:
        raise CodecError(f"invalid kind code {kind_code}")
    node_id = r.read(h.node_width) - 1
    mask = r.read(h.lane_bits)
    lanes = tuple(
        lane for lane in range(h.lane_bits) if mask & (1 << lane)
    )
    in_ids = tuple(
        (lane, h.id_table[r.read(h.id_index_bits)]) for lane in lanes
    )
    out_ids = tuple(
        (lane, h.id_table[r.read(h.id_index_bits)]) for lane in lanes
    )
    state = h.states[r.read(h.class_bits)]
    return BasicInfo(
        kind=_KIND_NAMES[kind_code],
        node_id=node_id,
        lanes=lanes,
        in_ids=in_ids,
        out_ids=out_ids,
        state=state,
    )


def _decode_pointer(r: BitReader, h: WireHeader) -> PointerLabel:
    return PointerLabel(
        target_id=h.id_table[r.read(h.id_index_bits)],
        id_a=h.id_table[r.read(h.id_index_bits)],
        dist_a=r.read(h.counter_width),
        id_b=h.id_table[r.read(h.id_index_bits)],
        dist_b=r.read(h.counter_width),
    )


def _decode_record(r: BitReader, h: WireHeader):
    info = _decode_info(r, h)
    if info.kind == "T":
        member_info = _decode_info(r, h)
        member_subtree = _decode_info(r, h)
        children = tuple(
            _decode_info(r, h) for _ in range(r.read(h.child_width))
        )
        pointer = _decode_pointer(r, h)
        root_member_id = r.read(h.node_width) - 1
        return TLevelRecord(
            info=info,
            member_info=member_info,
            member_subtree=member_subtree,
            child_subtrees=children,
            pointer=pointer,
            root_member_id=root_member_id,
        )
    if info.kind == "B":
        left = _decode_info(r, h)
        right = _decode_info(r, h)
        bridge = (r.read(h.lane_index_bits), r.read(h.lane_index_bits))
        bridge_tag = h.tags[r.read(h.tag_bits)]
        side = r.read(2) - 1
        return BLevelRecord(
            info=info,
            left=left,
            right=right,
            bridge=bridge,
            bridge_tag=bridge_tag,
            side=side,
        )
    if info.kind == "E":
        return ELevelRecord(
            info=info,
            in_id=h.id_table[r.read(h.id_index_bits)],
            out_id=h.id_table[r.read(h.id_index_bits)],
            tag=h.tags[r.read(h.tag_bits)],
        )
    if info.kind == "P":
        vertex_ids = tuple(
            h.id_table[r.read(h.id_index_bits)]
            for _ in range(r.read(h.path_width))
        )
        tags = tuple(
            h.tags[r.read(h.tag_bits)] for _ in range(r.read(h.path_width))
        )
        return PLevelRecord(
            info=info,
            vertex_ids=vertex_ids,
            tags=tags,
            position=r.read(h.counter_width),
        )
    raise CodecError(f"record cannot start with a {info.kind!r} node info")


def _decode_certificate(r: BitReader, h: WireHeader) -> EdgeCertificate:
    depth = r.read(h.depth_width)
    if depth < 1:
        raise CodecError("certificate stack cannot be empty")
    return EdgeCertificate(
        tuple(_decode_record(r, h) for _ in range(depth))
    )


def decode_label(
    data: bytes, header: WireHeader, bit_length: Optional[int] = None
) -> Theorem1Label:
    """Decode one label encoded by :func:`encode_label`."""
    try:
        r = BitReader(data, bit_length)
        certificate = _decode_certificate(r, header)
        embedded = []
        for _ in range(r.read(header.embed_width)):
            u_id = header.id_table[r.read(header.id_index_bits)]
            v_id = header.id_table[r.read(header.id_index_bits)]
            forward = r.read(header.counter_width)
            backward = r.read(header.counter_width)
            payload = _decode_certificate(r, header)
            embedded.append(
                EmbeddedRecord(
                    u_id=u_id,
                    v_id=v_id,
                    forward=forward,
                    backward=backward,
                    payload=payload,
                )
            )
        if bit_length is not None and r.position != bit_length:
            raise CodecError(
                f"trailing data: read {r.position} of {bit_length} bits"
            )
    except (BitStreamError, IndexError) as exc:
        raise CodecError(f"malformed label encoding: {exc}") from exc
    return Theorem1Label(certificate=certificate, embedded=tuple(embedded))


# ----------------------------------------------------------------------
# Labeling-level API.
# ----------------------------------------------------------------------
@dataclass
class EncodedLabeling:
    """A whole labeling in wire form: one header + per-edge byte strings.

    The size properties are the *measured* metric the reports quote:
    exact encoded bit counts, excluding the byte-boundary padding of the
    stored form and excluding the shared header.
    """

    header: WireHeader
    labels: dict  # edge key -> EncodedLabel
    location: str = "edges"

    @property
    def max_bits(self) -> int:
        if not self.labels:
            return 0
        return max(e.bit_length for e in self.labels.values())

    @property
    def total_bits(self) -> int:
        return sum(e.bit_length for e in self.labels.values())

    @property
    def mean_bits(self) -> float:
        if not self.labels:
            return 0.0
        return self.total_bits / len(self.labels)

    @property
    def total_bytes(self) -> int:
        """Stored payload size (padded bytes, header excluded)."""
        return sum(len(e.data) for e in self.labels.values())

    def bit_length(self, key) -> int:
        """Measured encoded size of one edge's label."""
        return self.labels[key].bit_length

    def decode(self) -> Labeling:
        """Rebuild the structured :class:`Labeling` this was encoded from."""
        mapping = {
            key: decode_label(e.data, self.header, e.bit_length)
            for key, e in self.labels.items()
        }
        return Labeling(
            location=self.location,
            mapping=mapping,
            size_context=self.header.size_context(),
        )


def encode_labeling(
    labeling: Labeling, header: Optional[WireHeader] = None
) -> EncodedLabeling:
    """Encode every label of ``labeling`` against one shared header.

    ``header`` defaults to :meth:`WireHeader.for_labeling`; pass an
    existing header only when re-encoding labels drawn from the same
    labeling (all dictionaries must cover the labels' fields).
    """
    memo = _EncodeMemo()
    if header is None:
        header = WireHeader.for_labeling(labeling, memo)
    return EncodedLabeling(
        header=header,
        labels={
            key: encode_label(label, header, memo)
            for key, label in labeling.mapping.items()
        },
        location=labeling.location,
    )


def decode_labeling(encoded: EncodedLabeling) -> Labeling:
    """Inverse of :func:`encode_labeling` (delegates to ``encoded.decode``)."""
    return encoded.decode()


def labeling_digest(encoded: EncodedLabeling) -> str:
    """Cryptographic content digest of an encoded labeling.

    Covers the canonical header fields and every label's key, bytes,
    and exact bit length (keys sorted by ``repr`` so dict order never
    matters).  This is the content link in the compiled-round envelope
    key (:mod:`repro.api.vectorized`): an attached round's kernels
    accept without re-deriving anything from the certificates, so the
    digest that vouches "same certificates" must be
    collision-resistant — hence blake2b, not a structural fingerprint.
    """
    h = encoded.header
    digest = hashlib.blake2b(digest_size=16)
    digest.update(
        repr(
            (
                h.version,
                h.n,
                h.universe_bits,
                h.class_count,
                tuple(h.id_table),
                tuple(canonical_state_repr(s) for s in h.states),
                tuple(repr(t) for t in h.tags),
                h.lane_bits,
                h.node_width,
                h.counter_width,
                h.depth_width,
                h.embed_width,
                h.path_width,
                h.child_width,
            )
        ).encode()
    )
    digest.update(repr(encoded.location).encode())
    for key in sorted(encoded.labels, key=repr):
        entry = encoded.labels[key]
        digest.update(repr(key).encode())
        digest.update(entry.data)
        digest.update(str(entry.bit_length).encode())
    return digest.hexdigest()


def stamp_wire_digest(labeling: Labeling, encoded: EncodedLabeling) -> None:
    """Attach ``encoded``'s content digest to ``labeling``.

    The verification engines hand executors only the mapping dict, so
    the digest rides on the labeling object
    (``labeling.wire_digest``) and is offered to cache-aware executors
    via their ``offer_labeling`` hook — the handle that lets a
    restarted process attach a persisted compiled round.  Best-effort:
    a labeling that cannot be digested simply never gets the
    compiled-round cache.
    """
    try:
        labeling.wire_digest = labeling_digest(encoded)
    except Exception:
        pass
