"""Plain-text tables and series for the benchmark reports.

The paper has no experimental tables of its own (it is a theory paper);
these helpers print the tables and figure-style series defined in
DESIGN.md Section 9 in a stable, grep-friendly format:

    == E1: label size scaling ==
    | w | n | property | max_bits | bits/log2(n) |
    ...
    series: E1-w3-connected (32, 812) (64, 934) ...
"""

from __future__ import annotations

import math


class Table:
    """A printable experiment table with an optional series dump."""

    def __init__(self, title: str, columns: list):
        self.title = title
        self.columns = list(columns)
        self.rows: list = []

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError("row width mismatch")
        self.rows.append([str(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
        def line(cells):
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
        out = [f"== {self.title} =="]
        out.append(line(self.columns))
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in self.rows:
            out.append(line(row))
        return "\n".join(out)

    def show(self) -> None:
        print()
        print(self.render())


def series(name: str, points: list) -> str:
    """Render one figure series as a single grep-friendly line."""
    body = " ".join(f"({x}, {y})" for x, y in points)
    return f"series: {name} {body}"


def fit_log_slope(points: list) -> float:
    """Least-squares slope of ``y`` against ``log2 x``.

    A Θ(log n) quantity gives a stable positive slope with small curvature;
    a Θ(log² n) quantity gives a slope that itself grows ~log n.  The
    benchmarks report both slopes and raw series so the shape claims can be
    eyeballed and asserted.
    """
    xs = [math.log2(x) for x, _y in points]
    ys = [float(y) for _x, y in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else 0.0
