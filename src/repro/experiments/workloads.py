"""Workload generators for the evaluation (DESIGN.md Section 9)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.api import CertificationSession
from repro.api.audit import derive_rng, derive_seed
from repro.core import apply_construction, random_lanewidth_sequence
from repro.graphs.generators import random_pathwidth_graph
from repro.mso.properties import is_bipartite
from repro.pathwidth import PathDecomposition


@dataclass(frozen=True)
class SeedStream:
    """A named, indexable stream of seeds derived from one root.

    Benchmarks used to scatter magic bases (``random.Random(2000 + t)``)
    across their adversary loops; a stream names the purpose instead and
    derives every seed from one root, so an entire experiment replays
    from a single integer and adding a campaign never perturbs another's
    randomness.  Streams are cheap value objects — derive them on the
    fly, don't store them.
    """

    root: int
    name: str

    def seed(self, index: int = 0) -> int:
        """The 64-bit seed at ``index`` of this stream."""
        return derive_seed(self.root, self.name, index)

    def rng(self, index: int = 0) -> random.Random:
        """A fresh :class:`random.Random` at ``index`` of this stream."""
        return derive_rng(self.root, self.name, index)

    def substream(self, name: str) -> "SeedStream":
        """A child stream (``root`` preserved, name path extended)."""
        return SeedStream(self.root, f"{self.name}/{name}")


def seed_stream(root: int, name: str) -> SeedStream:
    """Return the named :class:`SeedStream` under ``root``."""
    return SeedStream(root, name)


def lanewidth_workload(width: int, n_target: int, seed: int):
    """Return ``(sequence, graph)`` with ~``n_target`` vertices."""
    rng = random.Random(seed)
    extra = max(0, n_target - width)
    sequence = random_lanewidth_sequence(width, extra, rng)
    return sequence, apply_construction(sequence)


def pathwidth_workload(n: int, k: int, seed: int):
    """Return ``(graph, decomposition)`` with witness width <= k."""
    rng = random.Random(seed)
    graph, bags = random_pathwidth_graph(n, k, rng)
    return graph, PathDecomposition(graph, bags)


def batch_certify(target, properties, k: Optional[int] = None, seed: int = 0):
    """Certify ``properties`` as one batch against ``target``.

    Returns ``(reports, session)`` — the session's ``stage_counters``
    let benchmarks assert that the structural stages ran exactly once
    for the whole batch (the E5/E9 shared-hierarchy speedup).
    """
    session = CertificationSession(k=k, rng=random.Random(seed))
    reports = session.certify(target, properties)
    return reports, session


def property_truth(graph) -> dict:
    """Ground truth for the cheap benchmark properties."""
    return {
        "connected": graph.is_connected(),
        "acyclic": graph.is_forest(),
        "bipartite": is_bipartite(graph),
        "even-order": graph.n % 2 == 0,
    }
