"""Experiment harness shared by the ``benchmarks/`` suite."""

from repro.experiments.reporting import Table, fit_log_slope
from repro.experiments.workloads import (
    SeedStream,
    batch_certify,
    lanewidth_workload,
    pathwidth_workload,
    property_truth,
    seed_stream,
)

__all__ = [
    "Table",
    "fit_log_slope",
    "batch_certify",
    "lanewidth_workload",
    "pathwidth_workload",
    "property_truth",
    "SeedStream",
    "seed_stream",
]
