"""Proposition 2.1: edge-labeled schemes -> vertex-labeled schemes.

On a ``d``-degenerate graph, orient every edge acyclically with outdegree
at most ``d`` and store each edge's certificate at its tail.  A vertex
recovers the certificates of its incident edges from its own label (the
out-edges) and from its neighbors' labels (entries addressed to its own
identifier).  Bounded-pathwidth graphs are O(k)-degenerate, so for the
paper's setting the blow-up is a constant factor.

The entry for an out-edge stores ``(head_id, edge_input_label,
certificate)``; the verifier cross-checks that the reconstructed multiset
of edge input labels equals the multiset actually present on its ports,
so a prover cannot lie about input labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs import edge_key
from repro.graphs.degeneracy import orient_by_degeneracy
from repro.pls.bits import SizeContext
from repro.pls.model import Configuration, EdgePort, LocalView
from repro.pls.scheme import Labeling, ProofLabelingScheme


@dataclass(frozen=True)
class OutEdgeEntry:
    """One oriented edge stored at its tail."""

    tail_id: int
    head_id: int
    input_label: object
    certificate: object


class EdgeToVertexScheme(ProofLabelingScheme):
    """Wrap an edge-labeled scheme into a vertex-labeled one (Prop 2.1)."""

    label_location = "vertices"

    def __init__(self, base: ProofLabelingScheme):
        if base.label_location != "edges":
            raise ValueError("base scheme must be edge-labeled")
        self.base = base

    # ------------------------------------------------------------------
    def prove(self, config: Configuration) -> Labeling:
        base_labeling = self.base.prove(config)
        orientation, _degeneracy = orient_by_degeneracy(config.graph)
        mapping: dict = {v: () for v in config.graph.vertices()}
        for key, (tail, head) in orientation.items():
            entry = OutEdgeEntry(
                tail_id=config.ids[tail],
                head_id=config.ids[head],
                input_label=config.graph.edge_label(*key),
                certificate=base_labeling.mapping.get(key),
            )
            mapping[tail] = mapping[tail] + (entry,)
        return Labeling("vertices", mapping, base_labeling.size_context)

    # ------------------------------------------------------------------
    def verify(self, view: LocalView) -> bool:
        own_entries = view.own_certificate
        if not isinstance(own_entries, tuple):
            return False
        reconstructed = []
        for entry in own_entries:
            if not isinstance(entry, OutEdgeEntry):
                return False
            if entry.tail_id != view.identifier:
                return False
            reconstructed.append((entry.input_label, entry.certificate))
        for neighbor_label in view.neighbor_certificates:
            if not isinstance(neighbor_label, tuple):
                return False
            for entry in neighbor_label:
                if isinstance(entry, OutEdgeEntry) and entry.head_id == view.identifier:
                    reconstructed.append((entry.input_label, entry.certificate))
        if len(reconstructed) != view.degree:
            return False
        # The claimed input labels must match the genuine ones (multiset).
        claimed = sorted(repr(inp) for inp, _cert in reconstructed)
        actual = sorted(repr(port.input_label) for port in view.ports)
        if claimed != actual:
            return False
        base_view = LocalView(
            identifier=view.identifier,
            vertex_input_label=view.vertex_input_label,
            degree=view.degree,
            n_hint=view.n_hint,
            ports=tuple(
                EdgePort(input_label=inp, certificate=cert)
                for inp, cert in reconstructed
            ),
        )
        return self.base.verify(base_view)

    # ------------------------------------------------------------------
    def label_size_bits(self, label, ctx: SizeContext) -> int:
        if not isinstance(label, tuple):
            return ctx.id_bits
        total = 0
        for entry in label:
            # two endpoint ids + one input-label tag + the base certificate
            total += 2 * ctx.id_bits + 2
            total += self.base.label_size_bits(entry.certificate, ctx)
        return max(total, 1)
