"""Bit accounting for certificate sizes.

The complexity measure of a PLS is the maximum certificate length in
bits as a function of ``n`` (Section 1.1).  Labels in this code base are
structured Python objects; each scheme reports sizes through an explicit
per-label formula built from the helpers here, with identifier fields
costing ``id_bits = ceil(log2(id_universe))`` and counters costing their
binary width.  This mirrors the paper's accounting: an O(log n)-bit label
is a constant number of ID-sized and counter fields.

For Theorem 1 labels these formulas are now the *upper bound*: the wire
codec (:mod:`repro.codec`, spec in ``docs/FORMAT.md``) encodes each
label to actual bits, and the measured lengths — asserted ≤ the
accounted ones — are what reports quote.
"""

from __future__ import annotations

import math


def uint_bits(value: int) -> int:
    """Return the binary width needed for ``value`` (at least 1)."""
    if value < 0:
        raise ValueError("uint_bits needs a non-negative value")
    return max(1, value.bit_length())


def id_bits_for(n: int, universe_bits: int = 32) -> int:
    """Return the identifier field width for an ``n``-vertex network.

    Identifiers are O(log n)-bit by assumption; the simulator draws them
    from a 2^32 universe, so a field is ``min(universe_bits,
    2*ceil(log2 n) + 8)`` bits — the paper's Θ(log n) with an explicit
    constant, never exceeding the universe width.
    """
    if n < 1:
        raise ValueError("network must have at least one vertex")
    logn = max(1, math.ceil(math.log2(max(n, 2))))
    return min(universe_bits, 2 * logn + 8)


def counter_bits_for(n: int) -> int:
    """Width of a distance/rank/counter field (values in ``0..n``)."""
    return max(1, math.ceil(math.log2(max(n + 1, 2))))


class SizeContext:
    """Field widths for one network size, passed to label size formulas."""

    def __init__(self, n: int, universe_bits: int = 32, class_count: int = 1):
        self.n = n
        # Kept verbatim so the wire codec can rebuild an identical
        # context from its header (repro.codec.wire.WireHeader).
        self.universe_bits = universe_bits
        self.class_count = class_count
        self.id_bits = id_bits_for(n, universe_bits)
        self.counter_bits = counter_bits_for(n)
        # Homomorphism classes are a finite set for fixed (property, k);
        # a class field costs ceil(log2 |C|) bits.
        self.class_bits = max(1, math.ceil(math.log2(max(class_count, 2))))

    def __repr__(self) -> str:
        return (
            f"SizeContext(n={self.n}, id={self.id_bits}b, "
            f"counter={self.counter_bits}b, class={self.class_bits}b)"
        )


class ClassIndexer:
    """Assigns stable small indices to homomorphism-class fingerprints.

    Both prover and verifier know the algebra, so the class set (for a
    fixed property and lanewidth) is shared knowledge; certificates need
    only ``ceil(log2 |C|)`` bits per class field.  The indexer materializes
    that: classes are numbered in first-seen order during proving, and the
    final ``bits_per_class`` is the honest field width.
    """

    def __init__(self):
        self._index: dict = {}

    def index_of(self, fingerprint: str) -> int:
        if fingerprint not in self._index:
            self._index[fingerprint] = len(self._index)
        return self._index[fingerprint]

    @property
    def class_count(self) -> int:
        return max(1, len(self._index))

    @property
    def bits_per_class(self) -> int:
        return max(1, math.ceil(math.log2(max(self.class_count, 2))))
