"""The KKP Omega(log n) lower bound, demonstrated constructively.

Any proof labeling scheme that accepts all paths and rejects all cycles
needs Omega(log n)-bit labels [KKP10].  The counting heart of the proof is
a cut-and-splice argument: if labels have ``b`` bits, a path on ``n``
vertices has ``n - 1`` consecutive label pairs but only ``2^{2b}``
distinct pair values, so for ``n - 1 > 2^{2b}`` two disjoint positions
``i < j`` carry identical pairs ``(ℓ_i, ℓ_{i+1}) = (ℓ_j, ℓ_{j+1})``; the
segment ``v_{i+1} … v_j`` closed into a cycle presents every vertex with
exactly the local view it had on the path, so the verifier accepts a
cycle — contradiction.

:func:`splice_attack` performs exactly this surgery against any concrete
vertex-labeled scheme.  :class:`TruncatedDistanceScheme` is the natural
scheme family to attack: with distances truncated at ``cap`` it uses
``ceil(log2(cap+1))``-bit labels, is complete and sound while
``cap >= n - 1`` (distinct labels force an endpoint), and is broken by the
splice the moment truncation introduces a collision — tracing the exact
bit threshold the theorem predicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.graphs import Graph
from repro.graphs.generators import assign_random_ids, path_graph
from repro.pls.bits import SizeContext, uint_bits
from repro.pls.model import Configuration, LocalView
from repro.pls.scheme import Labeling, ProofLabelingScheme, ProverFailure
from repro.pls.simulator import run_verification


class DistanceModScheme(ProofLabelingScheme):
    """Certifies "the graph is a path" with ``ceil(log2 M)``-bit labels.

    Labels: distance from the lower-id endpoint, **mod M**.  A vertex
    labeled ``c`` accepts iff its degree is at most 2 and either

    * exactly one neighbor is labeled ``(c-1) mod M`` and every other
      neighbor ``(c+1) mod M`` (interior vertices and the far endpoint), or
    * it has degree 1 with its neighbor labeled ``(c+1) mod M`` (the near
      endpoint).

    Completeness holds for every ``M >= 3``.  Soundness holds exactly
    against cycles whose length is *not* divisible by ``M`` (an accepted
    cycle forces a consistent +/-1 gradient, whose increments must sum to
    0 mod M around the cycle) — so with ``M >= n`` the scheme is a correct
    path-vs-cycle PLS on n-vertex networks.  Below that, consecutive label
    pairs repeat with period ``M`` and :func:`splice_attack` forges an
    accepted cycle of length ``M`` — the pigeonhole of [KKP10] made
    concrete: correct schemes in this family need ``log2 n`` bits.
    """

    label_location = "vertices"

    def __init__(self, modulus: int):
        if modulus < 3:
            raise ValueError("modulus must be at least 3")
        self.modulus = modulus

    def prove(self, config: Configuration) -> Labeling:
        graph = config.graph
        if not graph.is_path_graph():
            raise ProverFailure("graph is not a path")
        endpoints = [v for v in graph.vertices() if graph.degree(v) <= 1]
        start = min(endpoints, key=lambda v: config.ids[v])
        distances = graph.distances_from(start)
        mapping = {v: d % self.modulus for v, d in distances.items()}
        return Labeling("vertices", mapping, SizeContext(config.n))

    def verify(self, view: LocalView) -> bool:
        c = view.own_certificate
        if not isinstance(c, int) or not 0 <= c < self.modulus:
            return False
        if view.degree > 2 or view.degree == 0:
            return view.degree == 0  # a single vertex is a (trivial) path
        down = (c - 1) % self.modulus
        up = (c + 1) % self.modulus
        nbrs = list(view.neighbor_certificates)
        if nbrs.count(down) == 1 and nbrs.count(up) == len(nbrs) - 1:
            return True
        return view.degree == 1 and nbrs[0] == up

    def label_size_bits(self, label, ctx: SizeContext) -> int:
        return uint_bits(self.modulus - 1)


@dataclass
class SpliceOutcome:
    """Result of one splice attempt."""

    collision_found: bool
    cycle_accepted: bool
    cycle_length: int = 0
    positions: Optional[tuple] = None


def find_collision(labels_in_order: list) -> Optional[tuple]:
    """Return positions ``i < j`` with equal consecutive label pairs.

    Positions must satisfy ``j - i >= 3`` so the spliced cycle has at
    least three vertices.
    """
    seen: dict = {}
    for i in range(len(labels_in_order) - 1):
        pair = (repr(labels_in_order[i]), repr(labels_in_order[i + 1]))
        if pair in seen and i - seen[pair] >= 3:
            return (seen[pair], i)
        if pair not in seen:
            seen[pair] = i
    return None


def forge_spliced_cycle(config: Configuration, labeling: Labeling):
    """Perform the cut-and-splice surgery on an honestly labeled path.

    Searches the path ``0..n-1`` for a repeated consecutive label pair
    and closes the enclosed segment into a cycle, reusing the very same
    identifiers and certificates — every vertex of the forgery sees
    exactly the local view it had on the path.  Returns
    ``(forged_config, forged_labeling, positions)``, or ``None`` when no
    collision exists (the scheme's labels are long enough).
    """
    order = sorted(config.graph.vertices())  # path vertices in order
    labels_in_order = [labeling.mapping[v] for v in order]
    hit = find_collision(labels_in_order)
    if hit is None:
        return None
    i, j = hit
    segment = order[i + 1 : j + 1]
    cycle = Graph(vertices=segment)
    for a, b in zip(segment, segment[1:]):
        cycle.add_edge(a, b)
    cycle.add_edge(segment[-1], segment[0])
    forged_config = Configuration(
        cycle, {v: config.ids[v] for v in segment}
    )
    forged_labeling = Labeling(
        labeling.location,
        {v: labeling.mapping[v] for v in segment},
        labeling.size_context,
    )
    return forged_config, forged_labeling, (i, j)


def splice_attack(
    scheme: ProofLabelingScheme,
    n: int,
    rng: Optional[random.Random] = None,
) -> SpliceOutcome:
    """Mount the cut-and-splice attack on a path-accepting scheme.

    Builds the path on ``n`` vertices, runs the honest prover, forges a
    cycle via :func:`forge_spliced_cycle`, and runs the verifier on the
    forged configuration.
    """
    rng = rng or random.Random(0)
    graph = path_graph(n)
    config = Configuration.with_random_ids(graph, rng)
    labeling = scheme.prove(config)
    forged = forge_spliced_cycle(config, labeling)
    if forged is None:
        return SpliceOutcome(collision_found=False, cycle_accepted=False)
    forged_config, forged_labeling, positions = forged
    result = run_verification(forged_config, scheme, forged_labeling)
    return SpliceOutcome(
        collision_found=True,
        cycle_accepted=result.accepted,
        cycle_length=forged_config.graph.n,
        positions=positions,
    )
