"""Proposition 2.2: certifying the existence of a designated vertex.

The paper's folklore scheme selects a spanning tree rooted at the vertex
with identifier ``x`` and labels every edge with ``x`` plus distance
information.  We implement the robust variant in which each edge carries
*both* endpoint records ``(id, dist)``: with only the min-distance on the
edge, a vertex with several neighbors at distance ``d-1`` (possible once
non-tree edges are labeled with graph distances) could not run the
exactly-one-parent test.  Carrying both records is still O(log n) bits and
makes the descent argument airtight:

* every vertex checks that each incident edge holds a record with its own
  identifier, all agreeing on one value ``d(v)``;
* the designated vertex checks ``d = 0``; every other vertex checks
  ``d > 0`` and that some incident edge's other record has distance
  ``d - 1``;
* soundness: following strictly decreasing distances from any vertex must
  reach a vertex with ``d = 0``, which accepts only if its identifier is
  ``x`` — so acceptance everywhere implies the designated vertex exists.

``PointerScheme`` is both a standalone edge-labeled PLS and the
sub-certificate embedded in the Theorem 1 labels (Lemma 6.5 applies it
inside B-node and T-node subgraphs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs import edge_key
from repro.pls.bits import SizeContext
from repro.pls.model import Configuration, LocalView
from repro.pls.scheme import Labeling, ProofLabelingScheme, ProverFailure


@dataclass(frozen=True)
class PointerLabel:
    """One edge's pointer certificate: target id + both endpoint records."""

    target_id: int
    id_a: int
    dist_a: int
    id_b: int
    dist_b: int

    def record_for(self, identifier: int):
        """Return this edge's distance record for the given endpoint id."""
        if identifier == self.id_a:
            return self.dist_a
        if identifier == self.id_b:
            return self.dist_b
        return None

    def other_record(self, identifier: int):
        """Return the other endpoint's ``(id, dist)`` record."""
        if identifier == self.id_a:
            return (self.id_b, self.dist_b)
        if identifier == self.id_b:
            return (self.id_a, self.dist_a)
        return None


def pointer_labels(config: Configuration, root) -> dict:
    """Return the honest pointer labeling rooted at ``root`` (edge keys)."""
    distances = config.graph.distances_from(root)
    if len(distances) != config.graph.n:
        raise ProverFailure("pointer scheme needs a connected graph")
    target = config.ids[root]
    labels = {}
    for u, v in config.graph.edges():
        labels[edge_key(u, v)] = PointerLabel(
            target_id=target,
            id_a=config.ids[u],
            dist_a=distances[u],
            id_b=config.ids[v],
            dist_b=distances[v],
        )
    return labels


def verify_pointer_ports(identifier: int, labels: list) -> bool:
    """Run the local pointer checks for one vertex given its edge labels.

    Exposed as a function so composite schemes (Lemma 6.5) can reuse it on
    embedded sub-certificates.
    """
    if not labels:
        return False  # an isolated vertex cannot certify connectivity
    if any(not isinstance(label, PointerLabel) for label in labels):
        return False
    targets = {label.target_id for label in labels}
    if len(targets) != 1:
        return False
    target = targets.pop()
    own = {label.record_for(identifier) for label in labels}
    if None in own or len(own) != 1:
        return False
    d = own.pop()
    if identifier == target:
        return d == 0
    if d == 0:
        return False  # distance 0 is reserved for the designated vertex
    others = [label.other_record(identifier) for label in labels]
    return any(rec is not None and rec[1] == d - 1 for rec in others)


class PointerScheme(ProofLabelingScheme):
    """Standalone PLS: "a vertex with identifier ``x`` exists".

    The designated vertex is chosen as the one with the minimum identifier
    when ``target_id`` is not given (the predicate is parameterized by
    ``x`` in the paper; experiments fix it from the configuration).
    """

    label_location = "edges"

    def __init__(self, target_id=None):
        self.target_id = target_id

    def prove(self, config: Configuration) -> Labeling:
        if self.target_id is None:
            root = min(config.ids, key=config.ids.get)
        else:
            root = config.vertex_of_id(self.target_id)
        mapping = pointer_labels(config, root)
        return Labeling(
            location="edges",
            mapping=mapping,
            size_context=SizeContext(config.n),
        )

    def verify(self, view: LocalView) -> bool:
        labels = [port.certificate for port in view.ports]
        return verify_pointer_ports(view.identifier, labels)

    def label_size_bits(self, label, ctx: SizeContext) -> int:
        # target + two (id, dist) records.
        return 3 * ctx.id_bits + 2 * ctx.counter_bits


def pointer_label_size_bits(ctx: SizeContext) -> int:
    """Size of one embedded pointer record (shared with Lemma 6.5 labels)."""
    return 3 * ctx.id_bits + 2 * ctx.counter_bits
