"""Numpy round-array precompilation beside :class:`ViewFactory`.

``ViewFactory`` (``repro.pls.model``) slices python lists per vertex to
build ``LocalView`` objects.  The vectorized executors need the same
round snapshot as flat ``int64`` arrays instead: CSR ``indptr`` /
``neighbors`` / ``incident``, plus the per-vertex identifier column.
:class:`RoundArrays` captures exactly that — it is deliberately *dumb*
(no certificate knowledge, no imports from ``repro.core``; the
dependency arrow runs ``repro.core -> repro.pls`` and must not reverse).

The module also provides a packed single-buffer representation
(:func:`pack_round_arrays` / :func:`unpack_round_arrays`) so a parent
process can publish one ``multiprocessing.shared_memory`` segment and
workers can rebuild zero-copy array views from it.

numpy is an optional dependency of the repo; importing this module
raises ``RuntimeError`` when it is absent so callers can gate cleanly
(``repro.api.vectorized`` catches this and falls back to the reference
executors).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

try:  # pragma: no cover - exercised indirectly via HAVE_NUMPY
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None

HAVE_NUMPY = _np is not None

#: Sentinel for "no identifier" slots inside packed buffers.  Chosen far
#: outside the validated identifier range (see ``_check_int``) so it can
#: never collide with a real vertex id.
NONE_ID = -(1 << 61)

#: Identifiers and record ids must fit comfortably inside int64 with
#: headroom for the packed (hi << 31 | lo) segment keys the kernels use.
_ID_LIMIT = 1 << 60


class NotVectorizable(ValueError):
    """Raised when a round cannot be mirrored into flat int64 arrays."""


def _require_numpy():
    if _np is None:  # pragma: no cover - numpy is present in CI
        raise RuntimeError(
            "numpy is required for repro.pls.arrays; install it or use "
            "the serial/parallel executors"
        )
    return _np


def _check_int(value, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise NotVectorizable("%s is not a plain int: %r" % (what, value))
    if not (-_ID_LIMIT < value < _ID_LIMIT):
        raise NotVectorizable("%s out of int64 kernel range: %r" % (what, value))
    return value


class RoundArrays:
    """Flat int64 mirrors of one verification round's topology.

    Fields
    ------
    n, m:
        vertex / edge counts.
    indptr, neighbors, incident:
        the CSR arrays from :class:`repro.graphs.csr.CSRAdjacency`,
        converted to ``int64`` numpy arrays.  ``neighbors`` holds dense
        vertex indices, ``incident`` holds edge indices aligned with the
        canonical sorted edge tuple.
    identifiers:
        per-dense-vertex integer identifier (the ``ids`` assignment).
    """

    __slots__ = ("n", "m", "indptr", "neighbors", "incident", "identifiers")

    def __init__(self, n, m, indptr, neighbors, incident, identifiers):
        self.n = int(n)
        self.m = int(m)
        self.indptr = indptr
        self.neighbors = neighbors
        self.incident = incident
        self.identifiers = identifiers

    @classmethod
    def from_csr(cls, csr, identifiers: Sequence[int]) -> "RoundArrays":
        """Build from a ``CSRAdjacency`` plus an identifier column.

        ``identifiers[i]`` is the integer id of dense vertex ``i`` (the
        order of ``csr.vertices``).  Raises :class:`NotVectorizable` if
        any identifier is not a plain bounded int or collides with the
        packing sentinel.
        """
        np = _require_numpy()
        ids = [_check_int(x, "vertex identifier") for x in identifiers]
        if any(x == NONE_ID for x in ids):
            raise NotVectorizable("identifier collides with NONE_ID sentinel")
        n = len(csr.vertices)
        if len(ids) != n:
            raise NotVectorizable(
                "identifier column length %d != vertex count %d" % (len(ids), n)
            )
        return cls(
            n=n,
            m=len(csr.edges),
            indptr=np.asarray(csr.indptr, dtype=np.int64),
            neighbors=np.asarray(csr.neighbors, dtype=np.int64),
            incident=np.asarray(csr.incident, dtype=np.int64),
            identifiers=np.asarray(ids, dtype=np.int64),
        )

    def degree(self, dense_index: int) -> int:
        return int(self.indptr[dense_index + 1] - self.indptr[dense_index])


_PACK_MAGIC = 0x52415252  # "RARR"


def pack_round_arrays(arrays: RoundArrays, order: Optional[Sequence[int]] = None):
    """Serialise a :class:`RoundArrays` (+ optional vertex order) into one
    contiguous int64 buffer suitable for a shared-memory segment.

    Layout: ``[magic, n, m, len(order)] ++ indptr ++ neighbors ++
    incident ++ identifiers ++ order``.  Lengths of the CSR arrays are
    implied by ``n``/``m`` (indptr is ``n+1``, neighbors/incident are
    ``2m``).
    """
    np = _require_numpy()
    order_arr = (
        np.asarray(list(order), dtype=np.int64)
        if order is not None
        else np.zeros(0, dtype=np.int64)
    )
    header = np.array(
        [_PACK_MAGIC, arrays.n, arrays.m, order_arr.shape[0]], dtype=np.int64
    )
    return np.concatenate(
        [header, arrays.indptr, arrays.neighbors, arrays.incident,
         arrays.identifiers, order_arr]
    )


def unpack_round_arrays(buf) -> Tuple[RoundArrays, "object"]:
    """Inverse of :func:`pack_round_arrays`.

    ``buf`` is any int64 array-like (typically ``np.frombuffer`` over a
    shared-memory segment).  Returns ``(RoundArrays, order)`` where the
    array fields are zero-copy views into ``buf``.
    """
    np = _require_numpy()
    buf = np.asarray(buf, dtype=np.int64)
    if buf.shape[0] < 4 or int(buf[0]) != _PACK_MAGIC:
        raise ValueError("not a packed RoundArrays buffer")
    n, m, olen = int(buf[1]), int(buf[2]), int(buf[3])
    pos = 4
    indptr = buf[pos:pos + n + 1]; pos += n + 1
    neighbors = buf[pos:pos + 2 * m]; pos += 2 * m
    incident = buf[pos:pos + 2 * m]; pos += 2 * m
    identifiers = buf[pos:pos + n]; pos += n
    order = buf[pos:pos + olen]; pos += olen
    if pos != buf.shape[0]:
        raise ValueError("packed RoundArrays buffer has trailing bytes")
    return RoundArrays(n, m, indptr, neighbors, incident, identifiers), order
