"""Configurations and local views — the PLS communication model.

Section 1.1: a configuration is a connected graph ``G`` with a state
assignment; each vertex's state contains a distinct O(log n)-bit
identifier plus the input labels of the vertex and its incident edges.
During verification a vertex sees its own state, its own certificate, and
the certificates arriving over its incident edges — nothing else.

Modeling note (documented in DESIGN.md): certificates are delivered
*per port*.  A vertex can tell which incident edge carried which
certificate (and knows that edge's input label), but it cannot see the
neighbor's identifier unless the certificate itself mentions it.  This is
the standard port-numbered LOCAL reception and is equivalent to the
paper's multiset formulation for all upper and lower bounds reproduced
here (certificates that need correlation carry endpoint IDs explicitly,
paying for them inside the measured label size).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.graphs import Graph, edge_key
from repro.graphs.generators import assign_random_ids


@dataclass
class Configuration:
    """A network: graph + distinct vertex identifiers (+ input labels).

    Input labels live on the graph itself (``Graph.vertex_label`` /
    ``Graph.edge_label``); identifiers are kept separate because the
    prover cannot choose them.
    """

    graph: Graph
    ids: dict

    def __post_init__(self):
        vertices = set(self.graph.vertices())
        if set(self.ids) != vertices:
            raise ValueError("ids must cover exactly the vertex set")
        if len(set(self.ids.values())) != len(self.ids):
            raise ValueError("identifiers must be distinct")

    @classmethod
    def with_random_ids(
        cls, graph: Graph, rng: Optional[random.Random] = None, universe_bits: int = 32
    ) -> "Configuration":
        """Attach fresh random distinct IDs to ``graph``."""
        return cls(graph, assign_random_ids(graph, rng, universe_bits))

    @property
    def n(self) -> int:
        return self.graph.n

    def vertex_of_id(self, identifier: int):
        """Return the vertex carrying ``identifier`` (test helper)."""
        for v, x in self.ids.items():
            if x == identifier:
                return v
        raise KeyError(f"no vertex has id {identifier}")


@dataclass(frozen=True)
class EdgePort:
    """One incident edge as seen by a vertex: input label + certificate."""

    input_label: object
    certificate: object


@dataclass
class LocalView:
    """Everything one vertex sees during the verification round."""

    identifier: int
    vertex_input_label: object
    degree: int
    n_hint: int  # |V| is common knowledge up to a constant factor (log n bits)
    own_certificate: object = None  # vertex-labeled schemes only
    neighbor_certificates: tuple = ()  # vertex-labeled schemes: multiset
    ports: tuple = ()  # edge-labeled schemes: EdgePort per incident edge


def build_vertex_view(
    config: Configuration, vertex, labeling: dict
) -> LocalView:
    """Local view for a vertex-labeled scheme (one-off reference path).

    ``ports`` pairs each incident edge's input label with the certificate
    of the neighbor behind it (port-numbered reception); the plain
    neighbor-certificate multiset is also provided for schemes that do not
    need the correlation.

    This is the dict-built reference construction; a verification round
    building every view should use a :class:`ViewFactory`, which produces
    identical :class:`LocalView` objects from the graph's CSR core
    (property-tested equality).
    """
    graph = config.graph
    neighbors = sorted(graph.neighbors(vertex))
    ports = tuple(
        EdgePort(
            input_label=graph.edge_label(*edge_key(vertex, u)),
            certificate=labeling.get(u),
        )
        for u in neighbors
    )
    return LocalView(
        identifier=config.ids[vertex],
        vertex_input_label=graph.vertex_label(vertex),
        degree=len(neighbors),
        n_hint=graph.n,
        own_certificate=labeling.get(vertex),
        neighbor_certificates=tuple(labeling.get(u) for u in neighbors),
        ports=ports,
    )


def build_edge_view(config: Configuration, vertex, labeling: dict) -> LocalView:
    """Local view for an edge-labeled scheme (one-off reference path)."""
    graph = config.graph
    ports = []
    for u in sorted(graph.neighbors(vertex)):
        key = edge_key(vertex, u)
        ports.append(
            EdgePort(
                input_label=graph.edge_label(*key),
                certificate=labeling.get(key),
            )
        )
    return LocalView(
        identifier=config.ids[vertex],
        vertex_input_label=graph.vertex_label(vertex),
        degree=len(ports),
        n_hint=graph.n,
        ports=tuple(ports),
    )


class ViewFactory:
    """Builds every :class:`LocalView` of one round from the CSR core.

    The per-vertex builders above re-derive the same facts for every
    vertex: copy + sort the neighbor set, recompute ``edge_key`` and
    chase two dictionaries per incident edge.  A factory does that work
    *once per round* — identifiers, vertex input labels, and certificates
    resolved into arrays parallel to the graph's CSR vertex order, edge
    input labels and edge certificates resolved by stable edge index —
    and then each view is a pair of array slices with zero per-vertex
    dictionary traffic.

    The factory deliberately still emits the same :class:`LocalView`
    type: the verifier's locality boundary (one vertex sees its ports and
    nothing else) is enforced by what the view *contains*, not by how it
    was assembled, and the tier-1 property tests pin factory views equal
    to the reference builders'.

    Parameters
    ----------
    config:
        The configuration whose round is being run.
    mapping:
        ``labeling.mapping`` — vertex keys for ``location="vertices"``,
        canonical edge keys for ``location="edges"``.
    location:
        ``"vertices"`` or ``"edges"``.
    """

    __slots__ = (
        "config",
        "location",
        "_csr",
        "_n",
        "_identifiers",
        "_vertex_inputs",
        "_edge_inputs",
        "_vertex_certs",
        "_edge_certs",
    )

    def __init__(self, config: Configuration, mapping: dict, location: str):
        if location not in ("vertices", "edges"):
            raise ValueError("location must be 'vertices' or 'edges'")
        graph = config.graph
        csr = graph.csr
        ids = config.ids
        self.config = config
        self.location = location
        self._csr = csr
        self._n = csr.n
        self._identifiers = [ids[v] for v in csr.vertices]
        vertex_labels = graph.vertex_labels()  # one copy per round
        self._vertex_inputs = [vertex_labels.get(v) for v in csr.vertices]
        edge_labels = graph.edge_labels()
        self._edge_inputs = [edge_labels.get(e) for e in csr.edges]
        if location == "vertices":
            self._vertex_certs = [mapping.get(v) for v in csr.vertices]
            self._edge_certs = None
        else:
            self._vertex_certs = None
            self._edge_certs = [mapping.get(e) for e in csr.edges]

    @property
    def vertices(self) -> tuple:
        """The vertex names in CSR (sorted) order; dense index = position."""
        return self._csr.vertices

    def index_of(self, vertex) -> int:
        """Return the dense index of ``vertex`` (KeyError if absent)."""
        return self._csr.index[vertex]

    @property
    def csr(self):
        """The underlying :class:`CSRAdjacency` snapshot of this round."""
        return self._csr

    @property
    def identifiers(self) -> list:
        """Per-dense-vertex integer identifiers (CSR vertex order)."""
        return self._identifiers

    @property
    def edge_certificates(self):
        """Per-edge certificate column (edge-labeled rounds; else None).

        Aligned with ``csr.edges``: entry ``k`` is the certificate on the
        canonical edge with stable index ``k`` (``None`` if unlabeled).
        """
        return self._edge_certs

    def round_arrays(self):
        """Numpy :class:`repro.pls.arrays.RoundArrays` mirror of this round.

        Raises :class:`repro.pls.arrays.NotVectorizable` when identifiers
        are not plain bounded ints, ``RuntimeError`` when numpy is absent.
        """
        from repro.pls.arrays import RoundArrays

        return RoundArrays.from_csr(self._csr, self._identifiers)

    def view_at(self, index: int) -> LocalView:
        """Build the :class:`LocalView` of the vertex with dense ``index``."""
        csr = self._csr
        start, stop = csr.indptr[index], csr.indptr[index + 1]
        neighbors = csr.neighbors
        incident = csr.incident
        edge_inputs = self._edge_inputs
        if self.location == "vertices":
            certs = self._vertex_certs
            ports = tuple(
                EdgePort(
                    input_label=edge_inputs[incident[p]],
                    certificate=certs[neighbors[p]],
                )
                for p in range(start, stop)
            )
            return LocalView(
                identifier=self._identifiers[index],
                vertex_input_label=self._vertex_inputs[index],
                degree=stop - start,
                n_hint=self._n,
                own_certificate=certs[index],
                neighbor_certificates=tuple(
                    certs[neighbors[p]] for p in range(start, stop)
                ),
                ports=ports,
            )
        certs = self._edge_certs
        ports = tuple(
            EdgePort(
                input_label=edge_inputs[incident[p]],
                certificate=certs[incident[p]],
            )
            for p in range(start, stop)
        )
        return LocalView(
            identifier=self._identifiers[index],
            vertex_input_label=self._vertex_inputs[index],
            degree=stop - start,
            n_hint=self._n,
            ports=ports,
        )

    def view(self, vertex) -> LocalView:
        """Build the :class:`LocalView` of ``vertex`` (by name)."""
        return self.view_at(self._csr.index[vertex])


def view_factory_for(
    config: Configuration, labeling, location: Optional[str] = None
) -> ViewFactory:
    """Return a :class:`ViewFactory` for one round.

    ``labeling`` may be a :class:`~repro.pls.scheme.Labeling` (its
    location wins unless overridden) or a plain mapping (``location``
    required).
    """
    mapping = getattr(labeling, "mapping", labeling)
    where = location or getattr(labeling, "location", None)
    if where is None:
        raise ValueError("location required for plain mappings")
    return ViewFactory(config, mapping, where)
