"""Configurations and local views — the PLS communication model.

Section 1.1: a configuration is a connected graph ``G`` with a state
assignment; each vertex's state contains a distinct O(log n)-bit
identifier plus the input labels of the vertex and its incident edges.
During verification a vertex sees its own state, its own certificate, and
the certificates arriving over its incident edges — nothing else.

Modeling note (documented in DESIGN.md): certificates are delivered
*per port*.  A vertex can tell which incident edge carried which
certificate (and knows that edge's input label), but it cannot see the
neighbor's identifier unless the certificate itself mentions it.  This is
the standard port-numbered LOCAL reception and is equivalent to the
paper's multiset formulation for all upper and lower bounds reproduced
here (certificates that need correlation carry endpoint IDs explicitly,
paying for them inside the measured label size).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.graphs import Graph, edge_key
from repro.graphs.generators import assign_random_ids


@dataclass
class Configuration:
    """A network: graph + distinct vertex identifiers (+ input labels).

    Input labels live on the graph itself (``Graph.vertex_label`` /
    ``Graph.edge_label``); identifiers are kept separate because the
    prover cannot choose them.
    """

    graph: Graph
    ids: dict

    def __post_init__(self):
        vertices = set(self.graph.vertices())
        if set(self.ids) != vertices:
            raise ValueError("ids must cover exactly the vertex set")
        if len(set(self.ids.values())) != len(self.ids):
            raise ValueError("identifiers must be distinct")

    @classmethod
    def with_random_ids(
        cls, graph: Graph, rng: Optional[random.Random] = None, universe_bits: int = 32
    ) -> "Configuration":
        """Attach fresh random distinct IDs to ``graph``."""
        return cls(graph, assign_random_ids(graph, rng, universe_bits))

    @property
    def n(self) -> int:
        return self.graph.n

    def vertex_of_id(self, identifier: int):
        """Return the vertex carrying ``identifier`` (test helper)."""
        for v, x in self.ids.items():
            if x == identifier:
                return v
        raise KeyError(f"no vertex has id {identifier}")


@dataclass(frozen=True)
class EdgePort:
    """One incident edge as seen by a vertex: input label + certificate."""

    input_label: object
    certificate: object


@dataclass
class LocalView:
    """Everything one vertex sees during the verification round."""

    identifier: int
    vertex_input_label: object
    degree: int
    n_hint: int  # |V| is common knowledge up to a constant factor (log n bits)
    own_certificate: object = None  # vertex-labeled schemes only
    neighbor_certificates: tuple = ()  # vertex-labeled schemes: multiset
    ports: tuple = ()  # edge-labeled schemes: EdgePort per incident edge


def build_vertex_view(
    config: Configuration, vertex, labeling: dict
) -> LocalView:
    """Local view for a vertex-labeled scheme.

    ``ports`` pairs each incident edge's input label with the certificate
    of the neighbor behind it (port-numbered reception); the plain
    neighbor-certificate multiset is also provided for schemes that do not
    need the correlation.
    """
    graph = config.graph
    neighbors = sorted(graph.neighbors(vertex))
    ports = tuple(
        EdgePort(
            input_label=graph.edge_label(*edge_key(vertex, u)),
            certificate=labeling.get(u),
        )
        for u in neighbors
    )
    return LocalView(
        identifier=config.ids[vertex],
        vertex_input_label=graph.vertex_label(vertex),
        degree=len(neighbors),
        n_hint=graph.n,
        own_certificate=labeling.get(vertex),
        neighbor_certificates=tuple(labeling.get(u) for u in neighbors),
        ports=ports,
    )


def build_edge_view(config: Configuration, vertex, labeling: dict) -> LocalView:
    """Local view for an edge-labeled scheme."""
    graph = config.graph
    ports = []
    for u in sorted(graph.neighbors(vertex)):
        key = edge_key(vertex, u)
        ports.append(
            EdgePort(
                input_label=graph.edge_label(*key),
                certificate=labeling.get(key),
            )
        )
    return LocalView(
        identifier=config.ids[vertex],
        vertex_input_label=graph.vertex_label(vertex),
        degree=len(ports),
        n_hint=graph.n,
        ports=tuple(ports),
    )
