"""The verification-round simulator (legacy surface).

One round: every vertex receives its local view and outputs accept or
reject; the scheme accepts iff all vertices accept (Section 1.1).  The
round itself now lives in :mod:`repro.api.runtime` — a
:class:`~repro.api.runtime.VerificationEngine` with pluggable executors,
fail-fast short-circuiting, and structured
:class:`~repro.api.runtime.VerificationReport` output.  These helpers
are kept as behavior-identical shims for legacy callers: a serial,
exhaustive round returning the plain :class:`VerificationResult`.

Verifiers still get a :class:`LocalView` and nothing else, which keeps
the locality guarantee auditable.
"""

from __future__ import annotations

from repro.pls.model import Configuration
from repro.pls.scheme import Labeling, ProofLabelingScheme, VerificationResult


def run_verification(
    config: Configuration,
    scheme: ProofLabelingScheme,
    labeling: Labeling,
) -> VerificationResult:
    """Run the distributed verification round and collect verdicts.

    Thin shim over :class:`repro.api.runtime.VerificationEngine` (serial
    executor, no short-circuit); use the engine directly for parallel
    execution, fail-fast audits, or the structured report.  (The import
    is deferred: ``repro.api`` depends on this package.)
    """
    from repro.api.runtime import VerificationEngine

    return VerificationEngine().verify(config, scheme, labeling).as_result()


def prove_and_verify(config: Configuration, scheme: ProofLabelingScheme):
    """Convenience: run the honest prover then the verification round."""
    labeling = scheme.prove(config)
    result = run_verification(config, scheme, labeling)
    return labeling, result
