"""The verification-round simulator.

One round: every vertex receives its local view and outputs accept or
reject; the scheme accepts iff all vertices accept (Section 1.1).  The
simulator is the only code that touches global state — verifiers get a
:class:`LocalView` and nothing else, which keeps the locality guarantee
auditable.
"""

from __future__ import annotations

from repro.pls.model import Configuration, build_edge_view, build_vertex_view
from repro.pls.scheme import Labeling, ProofLabelingScheme, VerificationResult


def run_verification(
    config: Configuration,
    scheme: ProofLabelingScheme,
    labeling: Labeling,
) -> VerificationResult:
    """Run the distributed verification round and collect verdicts."""
    if labeling.location != scheme.label_location:
        raise ValueError(
            f"labeling location {labeling.location!r} does not match the "
            f"scheme's {scheme.label_location!r}"
        )
    build_view = (
        build_vertex_view if scheme.label_location == "vertices" else build_edge_view
    )
    verdicts = {}
    for vertex in config.graph.vertices():
        view = build_view(config, vertex, labeling.mapping)
        try:
            verdicts[vertex] = bool(scheme.verify(view))
        except Exception:
            # A verifier choking on malformed (adversarial) labels rejects:
            # soundness must hold against arbitrary labelings.
            verdicts[vertex] = False
    return VerificationResult(verdicts=verdicts, accepted=all(verdicts.values()))


def prove_and_verify(config: Configuration, scheme: ProofLabelingScheme):
    """Convenience: run the honest prover then the verification round."""
    labeling = scheme.prove(config)
    result = run_verification(config, scheme, labeling)
    return labeling, result
