"""Classic proof labeling schemes from the introduction and related work.

* :class:`BipartitenessScheme` — the paper's one-bit example (Section 1.1).
* :class:`AcyclicityScheme` — per-component root + distance labels; the
  standard forest certification.
* :class:`SpanningTreeScheme` — verifying that the edges input-labeled
  ``"tree"`` form a spanning tree, the original motivation of [KKP10].

These serve three purposes: unit-level validation of the simulator,
baselines for the adversary harness, and pedagogical examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mso.properties import is_bipartite
from repro.pls.bits import SizeContext
from repro.pls.model import Configuration, LocalView
from repro.pls.scheme import Labeling, ProofLabelingScheme, ProverFailure

TREE_MARK = "tree"


class BipartitenessScheme(ProofLabelingScheme):
    """One-bit certificates: a proper 2-coloring (Section 1.1)."""

    label_location = "vertices"

    def prove(self, config: Configuration) -> Labeling:
        graph = config.graph
        if not is_bipartite(graph):
            raise ProverFailure("graph is not bipartite")
        color: dict = {}
        for start in graph.vertices():
            if start in color:
                continue
            color[start] = 0
            stack = [start]
            while stack:
                u = stack.pop()
                for w in graph.neighbors(u):
                    if w not in color:
                        color[w] = 1 - color[u]
                        stack.append(w)
        return Labeling("vertices", color, SizeContext(config.n))

    def verify(self, view: LocalView) -> bool:
        if view.own_certificate not in (0, 1):
            return False
        return all(c == 1 - view.own_certificate for c in view.neighbor_certificates)

    def label_size_bits(self, label, ctx: SizeContext) -> int:
        return 1


@dataclass(frozen=True)
class RootedDistanceLabel:
    """Certificate: component root id + BFS distance to it."""

    root_id: int
    dist: int


class AcyclicityScheme(ProofLabelingScheme):
    """Certifies that the graph is a forest.

    Every component is rooted at its minimum-id vertex; labels carry
    ``(root_id, dist)``.  A vertex at distance ``d > 0`` checks that
    exactly one neighbor is at ``d - 1`` and every other neighbor is at
    ``d + 1``; the root checks all neighbors are at distance 1 and that
    its own identifier equals the root id.  On any cycle some vertex sees
    either two parents or a non-child sibling, so acceptance everywhere
    forces a forest.
    """

    label_location = "vertices"

    def prove(self, config: Configuration) -> Labeling:
        graph = config.graph
        if not graph.is_forest():
            raise ProverFailure("graph has a cycle")
        mapping: dict = {}
        for component in graph.connected_components():
            root = min(component, key=lambda v: config.ids[v])
            distances = graph.distances_from(root)
            for v in component:
                mapping[v] = RootedDistanceLabel(config.ids[root], distances[v])
        return Labeling("vertices", mapping, SizeContext(config.n))

    def verify(self, view: LocalView) -> bool:
        own = view.own_certificate
        if not isinstance(own, RootedDistanceLabel) or own.dist < 0:
            return False
        neighbors = view.neighbor_certificates
        if any(
            not isinstance(c, RootedDistanceLabel) or c.root_id != own.root_id
            for c in neighbors
        ):
            return False
        if own.dist == 0:
            if view.identifier != own.root_id:
                return False
            return all(c.dist == 1 for c in neighbors)
        parents = sum(1 for c in neighbors if c.dist == own.dist - 1)
        children = sum(1 for c in neighbors if c.dist == own.dist + 1)
        return parents == 1 and parents + children == len(neighbors)

    def label_size_bits(self, label, ctx: SizeContext) -> int:
        return ctx.id_bits + ctx.counter_bits


class SpanningTreeScheme(ProofLabelingScheme):
    """Certifies that the ``"tree"``-marked edges form a spanning tree.

    The original application of proof labeling schemes [KKP10]: the input
    (a candidate tree, e.g. a routing structure) is marked on the edges;
    certificates prove global correctness.  Labels are ``(root_id, dist)``
    with distances measured in the marked subgraph; the port-numbered view
    correlates each neighbor's certificate with the mark of the shared
    edge.
    """

    label_location = "vertices"

    def prove(self, config: Configuration) -> Labeling:
        graph = config.graph
        marked = [
            (u, v) for u, v in graph.edges() if graph.edge_label(u, v) == TREE_MARK
        ]
        tree = graph.edge_subgraph(marked)
        if not tree.is_tree():
            raise ProverFailure("marked edges are not a spanning tree")
        root = min(graph.vertices(), key=lambda v: config.ids[v])
        distances = tree.distances_from(root)
        mapping = {
            v: RootedDistanceLabel(config.ids[root], distances[v])
            for v in graph.vertices()
        }
        return Labeling("vertices", mapping, SizeContext(config.n))

    def verify(self, view: LocalView) -> bool:
        own = view.own_certificate
        if not isinstance(own, RootedDistanceLabel) or own.dist < 0:
            return False
        # Root id must be globally consistent (the graph is connected, so
        # pairwise neighbor agreement propagates).
        tree_dists = []
        for port in view.ports:
            cert = port.certificate
            if not isinstance(cert, RootedDistanceLabel):
                return False
            if cert.root_id != own.root_id:
                return False
            if port.input_label == TREE_MARK:
                tree_dists.append(cert.dist)
        if own.dist == 0:
            return view.identifier == own.root_id and all(
                d == 1 for d in tree_dists
            )
        parents = sum(1 for d in tree_dists if d == own.dist - 1)
        children = sum(1 for d in tree_dists if d == own.dist + 1)
        return parents == 1 and parents + children == len(tree_dists)

    def label_size_bits(self, label, ctx: SizeContext) -> int:
        return ctx.id_bits + ctx.counter_bits
