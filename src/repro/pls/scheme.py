"""The ProofLabelingScheme interface and verification results."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.pls.bits import SizeContext
from repro.pls.model import Configuration, LocalView


@dataclass
class Labeling:
    """A certificate assignment produced by a prover.

    ``location`` is ``"vertices"`` or ``"edges"``; ``mapping`` maps the
    corresponding keys (vertices, or canonical edge keys) to label objects.
    ``size_context`` carries the field widths used for honest bit
    accounting, including the homomorphism-class count discovered during
    proving.
    """

    location: str
    mapping: dict
    size_context: SizeContext

    def __post_init__(self):
        if self.location not in ("vertices", "edges"):
            raise ValueError("location must be 'vertices' or 'edges'")

    def __getstate__(self):
        # The sizes cache holds a scheme, which may close over
        # unpicklable prover state; drop it at process boundaries.
        state = self.__dict__.copy()
        state.pop("_sizes_cache", None)
        return state

    def _label_sizes(self, scheme: "ProofLabelingScheme") -> tuple:
        """Per-label sizes, computed once per scheme (the report asks
        for max, mean, and total back to back over the same walk)."""
        cached = self.__dict__.get("_sizes_cache")
        if cached is not None and cached[0] is scheme:
            return cached[1]
        sizes = tuple(
            scheme.label_size_bits(label, self.size_context)
            for label in self.mapping.values()
        )
        self.__dict__["_sizes_cache"] = (scheme, sizes)
        return sizes

    def max_label_bits(self, scheme: "ProofLabelingScheme") -> int:
        """Return the maximum encoded certificate size in bits."""
        if not self.mapping:
            return 0
        return max(self._label_sizes(scheme))

    def total_label_bits(self, scheme: "ProofLabelingScheme") -> int:
        """Return the total certificate volume in bits."""
        return sum(self._label_sizes(scheme))

    def mean_label_bits(self, scheme: "ProofLabelingScheme") -> float:
        """Return the average encoded certificate size in bits."""
        if not self.mapping:
            return 0.0
        return self.total_label_bits(scheme) / len(self.mapping)


@dataclass
class VerificationResult:
    """Per-vertex verdicts of one verification round."""

    verdicts: dict  # vertex -> bool
    accepted: bool

    @property
    def rejecting_vertices(self) -> list:
        return sorted(v for v, ok in self.verdicts.items() if not ok)


class ProofLabelingScheme(ABC):
    """A (prover, verifier) pair for one graph predicate.

    ``prove`` may use unlimited centralized computation (the paper's P);
    ``verify`` must be strictly local: it receives one vertex's
    :class:`LocalView` and nothing else (the paper's V).  ``prove`` must
    raise :class:`ProverFailure` when the configuration does not satisfy
    the predicate — soundness experiments then craft adversarial labels
    separately.
    """

    #: "vertices" or "edges"
    label_location = "vertices"

    @abstractmethod
    def prove(self, config: Configuration) -> Labeling:
        """Return certificates making every vertex accept."""

    @abstractmethod
    def verify(self, view: LocalView) -> bool:
        """Return one vertex's verdict from its local view only."""

    @abstractmethod
    def label_size_bits(self, label, ctx: SizeContext) -> int:
        """Return the encoded size of one certificate in bits."""

    def verifier_only(self) -> "ProofLabelingScheme":
        """Return a pickle-safe scheme exposing the same verifier half.

        The verification runtime ships ``(config, verifier, labeling)``
        across process boundaries; prover state (witness decomposer
        closures, cached stage objects) often is not picklable, so
        schemes carrying such state override this to strip it.  The
        default returns ``self`` — most schemes are plain data.
        """
        return self


class ProverFailure(Exception):
    """Raised by provers on configurations violating the predicate."""
