"""Soundness attack harness: label corruption and transplantation.

A PLS must reject *every* labeling of a non-satisfying configuration and
must not be fooled by perturbed or misappropriated honest labelings.
These generators produce adversarial labelings from honest ones:

* **mutation** — walk a label object and perturb one leaf (int nudges,
  boolean flips, tuple element replacement);
* **swap** — exchange the certificates of two vertices/edges;
* **transplant** — apply the honest labels proven for configuration A to
  configuration B (position-wise), the classic "right proof, wrong graph"
  attack.

The experiments measure the rejection rate over many corrupted trials;
soundness demands rejection whenever the *predicate* is violated, and the
tests assert exactly that (a mutation that happens to produce another
valid proof of a true statement is not a soundness failure).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from repro.pls.scheme import Labeling


def mutate_value(value, rng: random.Random):
    """Return a perturbed copy of an arbitrary label object."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + rng.choice([-2, -1, 1, 2, 7, -7])
    if isinstance(value, str):
        if not value:
            return "x"
        index = rng.randrange(len(value))
        replacement = chr((ord(value[index]) - 31) % 95 + 33)
        return value[:index] + replacement + value[index + 1 :]
    if isinstance(value, tuple):
        if not value:
            return (0,)
        index = rng.randrange(len(value))
        mutated = mutate_value(value[index], rng)
        return value[:index] + (mutated,) + value[index + 1 :]
    if isinstance(value, frozenset):
        items = sorted(value, key=repr)
        if not items:
            return frozenset({0})
        index = rng.randrange(len(items))
        items[index] = mutate_value(items[index], rng)
        return frozenset(items)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.fields(value)
        target = rng.choice(fields)
        current = getattr(value, target.name)
        return dataclasses.replace(value, **{target.name: mutate_value(current, rng)})
    if value is None:
        return 0
    return value


def corrupt_one_label(
    labeling: Labeling, rng: random.Random, key=None
) -> Labeling:
    """Return a copy of the labeling with one certificate mutated."""
    mapping = dict(labeling.mapping)
    if not mapping:
        return labeling
    if key is None:
        key = rng.choice(sorted(mapping, key=repr))
    mapping[key] = mutate_value(mapping[key], rng)
    return Labeling(labeling.location, mapping, labeling.size_context)


def swap_two_labels(labeling: Labeling, rng: random.Random) -> Labeling:
    """Return a copy with two certificates exchanged."""
    keys = sorted(labeling.mapping, key=repr)
    if len(keys) < 2:
        return labeling
    a, b = rng.sample(keys, 2)
    mapping = dict(labeling.mapping)
    mapping[a], mapping[b] = mapping[b], mapping[a]
    return Labeling(labeling.location, mapping, labeling.size_context)


def drop_one_label(labeling: Labeling, rng: random.Random) -> Labeling:
    """Return a copy with one certificate replaced by ``None``."""
    keys = sorted(labeling.mapping, key=repr)
    if not keys:
        return labeling
    mapping = dict(labeling.mapping)
    mapping[rng.choice(keys)] = None
    return Labeling(labeling.location, mapping, labeling.size_context)


def transplant_labels(
    source: Labeling, target_keys: list
) -> Optional[Labeling]:
    """Map the source labels onto ``target_keys`` position-wise.

    Returns ``None`` when the counts differ (no sensible transplant).
    """
    source_keys = sorted(source.mapping, key=repr)
    if len(source_keys) != len(target_keys):
        return None
    mapping = {
        tk: source.mapping[sk] for sk, tk in zip(source_keys, sorted(target_keys, key=repr))
    }
    return Labeling(source.location, mapping, source.size_context)
