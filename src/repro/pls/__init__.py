"""Proof labeling schemes: model, simulator, and building blocks.

This package implements Section 1.1's model faithfully:

* a :class:`Configuration` is a connected graph with O(log n)-bit distinct
  identifiers and optional input labels on vertices and edges;
* a :class:`ProofLabelingScheme` is a (centralized prover, local verifier)
  pair; labels live on vertices or on edges (Section 2.1's variant);
* the :mod:`simulator <repro.pls.simulator>` runs the single verification
  round, giving each vertex exactly its local view and nothing else;
* :mod:`transforms <repro.pls.transforms>` implements Proposition 2.1
  (edge labels -> vertex labels through a bounded-outdegree orientation);
* :mod:`pointer <repro.pls.pointer>` implements Proposition 2.2 (the
  spanning-tree scheme "pointing to" a designated vertex);
* :mod:`adversary <repro.pls.adversary>` and
  :mod:`lower_bound <repro.pls.lower_bound>` provide the soundness attack
  harness and the KKP cut-and-splice Omega(log n) adversary.
"""

from repro.pls.model import (
    Configuration,
    EdgePort,
    LocalView,
    ViewFactory,
    view_factory_for,
)
from repro.pls.arrays import (
    HAVE_NUMPY,
    NotVectorizable,
    RoundArrays,
    pack_round_arrays,
    unpack_round_arrays,
)
from repro.pls.scheme import Labeling, ProofLabelingScheme, VerificationResult
from repro.pls.simulator import run_verification
from repro.pls.bits import uint_bits, id_bits_for
from repro.pls.pointer import PointerScheme
from repro.pls.classic import AcyclicityScheme, BipartitenessScheme, SpanningTreeScheme
from repro.pls.transforms import EdgeToVertexScheme

__all__ = [
    "Configuration",
    "EdgePort",
    "LocalView",
    "ViewFactory",
    "view_factory_for",
    "HAVE_NUMPY",
    "NotVectorizable",
    "RoundArrays",
    "pack_round_arrays",
    "unpack_round_arrays",
    "Labeling",
    "ProofLabelingScheme",
    "VerificationResult",
    "run_verification",
    "uint_bits",
    "id_bits_for",
    "PointerScheme",
    "AcyclicityScheme",
    "BipartitenessScheme",
    "SpanningTreeScheme",
    "EdgeToVertexScheme",
]
