"""Edit-batch recertification: the incremental front end.

An :class:`IncrementalCertifier` owns an evolving graph and keeps its
certification current across :class:`~repro.graphs.edits.EditBatch`
updates.  One update is three reuse layers deep:

1. **Decomposition repair** (:mod:`repro.incremental.diff`): the cached
   witness decomposition is patched locally instead of re-searched;
   at production sizes the search dominates cold certification.  When
   the repair falls back (width bound, dirty fraction), the full search
   re-runs and the update counts in ``metrics.full_fallbacks``.
2. **Artifact reuse** (the PR 5 plan DAG): the session re-keys every
   stage on the edited graph's certification identity
   (``fingerprint("edges")``), so a vertex-relabeling batch resolves
   the *entire* chain — decomposition, hierarchy, evaluation, labeling,
   even the encoded bytes — from the
   :class:`~repro.api.artifacts.ArtifactCache`.  Structural batches
   reuse nothing downstream (certificates embed global class indices)
   but skip the search via a witness decomposer wrapping the repair.
3. **Frontier re-verification** (:mod:`repro.incremental.executor`):
   instead of a whole-graph round, only the dirty region — touched
   vertices plus a one-hop frontier — re-verifies.  The incremental
   verdict equals the full-round verdict for honest updates (property-
   tested); ``full_round_every`` and ``force_full`` are the escape
   hatches that periodically restore whole-graph coverage, and a
   repair fallback always escalates to a full round (every certificate
   changed, so a local region would under-report what moved).

The certifier is deliberately *stateful about identity*: vertex
identifiers are drawn once at baseline and pinned, so the
per-configuration label artifacts stay addressable across updates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from repro.api.session import CertificationSession
from repro.graphs import Graph
from repro.graphs.edits import EditBatch, apply_edits
from repro.pls.model import Configuration
from repro.pls.scheme import ProverFailure

from repro.incremental.diff import (
    DEFAULT_MAX_DIRTY_FRACTION,
    RepairResult,
    repair_decomposition,
    witness_decomposer,
)
from repro.incremental.executor import DirtyRegionExecutor, RegionReport


@dataclass
class IncrementalMetrics:
    """Counters the service surfaces through its ``metrics`` op."""

    updates: int = 0
    bags_dirtied: int = 0
    artifacts_reused: int = 0
    full_fallbacks: int = 0
    region_rounds: int = 0
    full_rounds: int = 0

    def to_dict(self) -> dict:
        return {
            "updates": self.updates,
            "bags_dirtied": self.bags_dirtied,
            "artifacts_reused": self.artifacts_reused,
            "full_fallbacks": self.full_fallbacks,
            "region_rounds": self.region_rounds,
            "full_rounds": self.full_rounds,
        }

    def merge(self, other: "IncrementalMetrics") -> None:
        self.updates += other.updates
        self.bags_dirtied += other.bags_dirtied
        self.artifacts_reused += other.artifacts_reused
        self.full_fallbacks += other.full_fallbacks
        self.region_rounds += other.region_rounds
        self.full_rounds += other.full_rounds


@dataclass
class IncrementalReport:
    """One update's outcome across every certified property."""

    accepted: bool
    mode: str  # "baseline" | "region" | "full" | "fallback"
    reports: dict  # property key -> CertificationReport
    rounds: dict  # property key -> RegionReport (empty for refusals)
    repair: Optional[RepairResult]
    batch: Optional[EditBatch]
    update_index: int
    artifacts_reused: int = 0
    stages_run: int = 0
    elapsed_seconds: float = 0.0
    fingerprint: str = ""

    @property
    def refusals(self) -> dict:
        return {
            key: report.refusal
            for key, report in self.reports.items()
            if report.refused
        }

    def to_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "mode": self.mode,
            "update_index": self.update_index,
            "batch_size": len(self.batch) if self.batch is not None else 0,
            "properties": {
                key: {
                    "accepted": report.accepted,
                    "refused": report.refused,
                    "refusal": report.refusal,
                    "class_count": report.class_count,
                    "total_label_bits": report.total_label_bits,
                    "max_label_bits": report.max_label_bits,
                }
                for key, report in self.reports.items()
            },
            "rounds": {
                key: round_.to_dict() for key, round_ in self.rounds.items()
            },
            "bags_dirtied": self.repair.dirty_count
            if self.repair is not None and not self.repair.fallback
            else 0,
            "fallback": bool(self.repair and self.repair.fallback),
            "fallback_reason": self.repair.reason if self.repair else "",
            "artifacts_reused": self.artifacts_reused,
            "stages_run": self.stages_run,
            "elapsed_seconds": self.elapsed_seconds,
            "fingerprint": self.fingerprint,
        }


class IncrementalCertifier:
    """Keeps one evolving graph's certification current across edits.

        inc = IncrementalCertifier(graph, ["connected"], k=2)
        inc.baseline()                      # cold certify + full round
        report = inc.update(EditBatch([remove_edge(u, v)]))
        report.accepted, inc.metrics.artifacts_reused

    Parameters
    ----------
    graph:
        The base graph; the certifier works on its own copy and evolves
        it with each accepted batch (:attr:`graph` is the current state).
    properties:
        Registry keys / algebras certified on every update.  Courcelle
        properties evaluate on graph structure only; vertex labels never
        reach the pipeline.
    k:
        Pathwidth bound (defaults to ``session.k`` when a session is
        supplied).
    session:
        Optional :class:`~repro.api.session.CertificationSession` to
        certify through — its artifact cache (and store, if any) is what
        makes the reuse layers persistent.  The certifier *owns* the
        session's ``decomposer`` field, swapping in witness decomposers
        for repaired updates.
    full_round_every:
        Escape hatch cadence: every Nth update runs a whole-graph
        verification round instead of a region round (0 = only on
        fallback or ``force_full``).
    max_dirty_fraction:
        Repair give-up threshold, see
        :func:`repro.incremental.diff.repair_decomposition`.
    executor:
        The :class:`DirtyRegionExecutor` running the rounds.
    """

    def __init__(
        self,
        graph: Graph,
        properties,
        k: Optional[int] = None,
        *,
        session: Optional[CertificationSession] = None,
        store=None,
        decomposer=None,
        exact_limit: Optional[int] = None,
        exact_engine: Optional[str] = None,
        exact_budget_ms: Optional[float] = None,
        rng: Optional[random.Random] = None,
        max_dirty_fraction: float = DEFAULT_MAX_DIRTY_FRACTION,
        full_round_every: int = 0,
        executor: Optional[DirtyRegionExecutor] = None,
    ):
        if isinstance(properties, (str,)) or not hasattr(
            properties, "__iter__"
        ):
            properties = [properties]
        self.properties = list(properties)
        if not self.properties:
            raise ValueError("need at least one property to certify")
        if session is None:
            if k is None:
                raise ValueError("IncrementalCertifier needs a pathwidth bound k")
            session = CertificationSession(
                k=k,
                decomposer=decomposer,
                exact_limit=exact_limit,
                exact_engine=exact_engine,
                exact_budget_ms=exact_budget_ms,
                rng=rng,
                store=store,
            )
        elif k is None:
            k = session.k
        if k is None:
            raise ValueError("the session carries no pathwidth bound k")
        self.k = k
        self.session = session
        if full_round_every < 0:
            raise ValueError("full_round_every must be >= 0")
        self.full_round_every = full_round_every
        self.max_dirty_fraction = max_dirty_fraction
        self.executor = executor or DirtyRegionExecutor()
        self.metrics = IncrementalMetrics()
        self.graph = graph.copy()
        self._base_decomposer = session.decomposer
        # A caller-pinned decomposer is a witness for *this* graph; it
        # must not be offered for any other identity (see baseline()).
        self._base_identity = self.graph.fingerprint("edges")
        # The decomposer that built the *current* identity's key chain.
        # Identity-unchanged batches (vertex labels only) must certify
        # through it again — anything else would chain different keys
        # and re-run the whole pipeline instead of resolving it.
        self._chain_decomposer = session.decomposer
        self._rng = rng or random.Random(0)
        self._ids: Optional[dict] = None
        self._decomposition = None
        self._updates_since_full = 0

    # ------------------------------------------------------------------
    @property
    def baselined(self) -> bool:
        """Whether :meth:`baseline` has established the initial state."""
        return self._decomposition is not None

    @property
    def decomposition(self):
        """The decomposition the current certification was built from."""
        return self._decomposition

    @property
    def config(self) -> Configuration:
        """The current graph under the pinned identifier assignment."""
        if self._ids is None:
            raise RuntimeError("baseline() has not run yet")
        return Configuration(self.graph, self._ids)

    def baseline(self) -> IncrementalReport:
        """Cold-certify the base graph and run a full round."""
        start = perf_counter()
        config = Configuration.with_random_ids(self.graph, self._rng)
        self._ids = dict(config.ids)
        base = (
            self._base_decomposer
            if self.graph.fingerprint("edges") == self._base_identity
            else None  # evolved past the pinned witness: full search
        )
        self.session.decomposer = base
        self._chain_decomposer = base
        before = sum(self.session.stage_counters.values())
        reports = self.session.certify(config, self.properties, verify=True)
        if not isinstance(reports, dict):
            reports = {self.properties[0]: reports}
        try:
            self._decomposition = self._resolve_decomposition(config)
        except ProverFailure:
            # The structural phase itself refused (no witness found):
            # there is nothing to maintain incrementally.  The refusals
            # ride in the reports; the certifier stays un-baselined.
            self._decomposition = None
        self._updates_since_full = 0
        rounds = {
            key: RegionReport(
                accepted=report.verification.accepted,
                verdicts=dict(report.verification.verdicts),
                region=tuple(
                    sorted(report.verification.verdicts, key=repr)
                ),
                vertices_total=report.verification.vertices_total,
                frontier_hops=self.executor.frontier_hops,
                mode="full",
                rejections=tuple(report.verification.rejecting_vertices),
                elapsed_seconds=report.verification.elapsed_seconds,
                full_report=report.verification,
            )
            for key, report in reports.items()
            if report.verification is not None
        }
        return IncrementalReport(
            accepted=all(
                not r.refused and r.accepted for r in reports.values()
            ),
            mode="baseline",
            reports=reports,
            rounds=rounds,
            repair=None,
            batch=None,
            update_index=0,
            stages_run=sum(self.session.stage_counters.values()) - before,
            elapsed_seconds=perf_counter() - start,
            fingerprint=self.graph.fingerprint(),
        )

    # ------------------------------------------------------------------
    def update(
        self, batch: EditBatch, force_full: bool = False
    ) -> IncrementalReport:
        """Apply one edit batch and recertify incrementally.

        Raises :class:`~repro.graphs.edits.EditError` (leaving the
        certifier's state untouched) when the batch does not apply.
        """
        if not isinstance(batch, EditBatch):
            batch = EditBatch(batch)
        if not batch:
            raise ValueError("update() needs a non-empty batch")
        if self._ids is None:
            self.baseline()
        if self._decomposition is None:
            # The current graph refuses certification (the baseline was
            # refused, or a fallback landed on a state with no witness —
            # e.g. the graph went disconnected).  Apply the edits anyway
            # and recertify the evolved graph from scratch so a healing
            # edit can recover the stream.
            return self._rebaseline_update(batch)
        start = perf_counter()
        new_graph = apply_edits(self.graph, batch)

        repair = repair_decomposition(
            self._decomposition,
            new_graph,
            batch,
            self.k,
            max_dirty_fraction=self.max_dirty_fraction,
        )
        self.metrics.updates += 1
        if repair.fallback:
            self.metrics.full_fallbacks += 1
            if repair.decomposition is not None:
                # Policy fallback (dirty region too large): the repaired
                # bags are still a valid witness; rebuild every
                # certificate over them instead of re-searching.
                self._chain_decomposer = witness_decomposer(
                    repair.decomposition
                )
            else:
                # No repaired witness exists (the width would grow):
                # hand the evolved graph to the session's full search.
                # The pinned base decomposer is only a witness for the
                # *base* graph, so it must not be reused here.
                self._chain_decomposer = None
        else:
            self.metrics.bags_dirtied += repair.dirty_count
            if batch.structural() or batch.relabels_edges():
                # The identity changed; chain fresh keys off the
                # repaired bags instead of re-running the search.
                self._chain_decomposer = witness_decomposer(
                    repair.decomposition
                )
            # else: vertex labels only — identical identity, identical
            # key chain (same decomposer as last time), so every
            # artifact (incl. the encoded bytes) resolves from cache.
        self.session.decomposer = self._chain_decomposer

        config = Configuration(new_graph, self._ids)
        before = sum(self.session.stage_counters.values())
        reports = self.session.certify(config, self.properties, verify=False)
        if not isinstance(reports, dict):
            reports = {self.properties[0]: reports}
        stages_run = sum(self.session.stage_counters.values()) - before
        reused = max(0, self._expected_stage_runs() - stages_run)
        self.metrics.artifacts_reused += reused
        self._record_store_metrics(repair, reused)

        # Commit the new state before the round: the certification
        # exists regardless of what the round concludes about it.
        self.graph = new_graph
        if repair.decomposition is not None:
            self._decomposition = repair.decomposition
        else:
            try:
                self._decomposition = self._resolve_decomposition(config)
            except ProverFailure:
                # The from-scratch search refused the evolved graph (it
                # may be disconnected, or no witness of width <= k was
                # found); the refusals ride in the reports and the next
                # update re-baselines.
                self._decomposition = None

        self._updates_since_full += 1
        full = (
            force_full
            or repair.fallback
            or (
                self.full_round_every > 0
                and self._updates_since_full >= self.full_round_every
            )
        )
        rounds: dict = {}
        dirty = batch.touched_vertices()
        for key, report in reports.items():
            if report.refused:
                continue
            if full:
                round_ = self.executor.full_round(
                    config, report.scheme, report.labeling
                )
                report.verification = round_.full_report
                report.result = round_.full_report.as_result()
            else:
                round_ = self.executor.verify_region(
                    config, report.scheme, report.labeling, dirty
                )
            report.accepted = round_.accepted
            rounds[key] = round_
        if full:
            self.metrics.full_rounds += 1
            self._updates_since_full = 0
        else:
            self.metrics.region_rounds += 1

        accepted = bool(reports) and all(
            not r.refused and r.accepted for r in reports.values()
        )
        return IncrementalReport(
            accepted=accepted,
            mode="fallback" if repair.fallback else ("full" if full else "region"),
            reports=reports,
            rounds=rounds,
            repair=repair,
            batch=batch,
            update_index=self.metrics.updates,
            artifacts_reused=reused,
            stages_run=stages_run,
            elapsed_seconds=perf_counter() - start,
            fingerprint=new_graph.fingerprint(),
        )

    # ------------------------------------------------------------------
    def _rebaseline_update(self, batch: EditBatch) -> IncrementalReport:
        """Update with no live decomposition: recertify from scratch."""
        start = perf_counter()
        self.graph = apply_edits(self.graph, batch)
        base = self.baseline()
        self.metrics.updates += 1
        self.metrics.full_fallbacks += 1
        self.metrics.full_rounds += 1
        repair = RepairResult(
            None, (), fallback=True, reason="no live decomposition"
        )
        self._record_store_metrics(repair, reused=0)
        return IncrementalReport(
            accepted=base.accepted,
            mode="fallback",
            reports=base.reports,
            rounds=base.rounds,
            repair=repair,
            batch=batch,
            update_index=self.metrics.updates,
            stages_run=base.stages_run,
            elapsed_seconds=perf_counter() - start,
            fingerprint=self.graph.fingerprint(),
        )

    def _record_store_metrics(self, repair: RepairResult, reused: int) -> None:
        """Mirror the update into the backing store's lifetime counters."""
        metrics = getattr(self.session.store, "metrics", None)
        if metrics is None:
            return
        metrics.add("updates")
        if repair.fallback:
            metrics.add("full_fallbacks")
        elif repair.dirty_count:
            metrics.add("bags_dirtied", repair.dirty_count)
        if reused:
            metrics.add("artifacts_reused", reused)

    def _expected_stage_runs(self) -> int:
        """Stage runs a cold certify of the current batch would cost."""
        # theorem1 plan: 4 structural nodes + (evaluate, label) per
        # property.  Kept in sync with repro.api.plan.theorem1_plan by
        # the metrics tests.
        return 4 + 2 * len(self.properties)

    def _resolve_decomposition(self, config: Configuration):
        """Fetch the decomposition the session just used (cache-warm)."""
        structure = self.session._structure_for(
            config, None, config.graph.fingerprint("edges")
        )
        return structure.ctx.decomposition
