"""Frontier re-verification: run the round only where the edits landed.

A full verification round touches every vertex; after a small edit
batch that is almost entirely redundant.  The
:class:`DirtyRegionExecutor` verifies the **dirty region** — the
vertices the batch touched plus a certified frontier of
``frontier_hops`` graph neighborhoods around them — against the *fresh*
labeling the incremental prover just produced.

Why this is sound, and what it does and does not claim:

* The labeling being checked is the honest prover's output for the
  edited graph.  By completeness (Theorem 1) every vertex accepts it,
  so for honest updates the region verdict and the full-round verdict
  coincide — this equivalence is *property-tested* in the tier-1 suite
  rather than assumed.
* Against an adversary who tampers with certificates **in or near the
  dirty region** (the stale-after-edit and forged-repair attacks the
  audit campaign mounts), the region round rejects exactly like a full
  round would: every touched vertex re-runs the same deterministic
  ``scheme.verify``.
* A corruption placed *outside* the region is, by definition, outside
  what this round re-checks.  That is the standard locality trade-off
  (Bousquet et al. 2023): the escape hatch is the periodic/forced
  **full round** (`full_round`, or `IncrementalCertifier`'s
  ``full_round_every``), which restores whole-graph coverage on a
  schedule the deployment chooses.

Coverage accounting mirrors the engine's: a region vertex that yields
no verdict (missing label, verifier exception) is a rejection, never a
silent skip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from repro.api.runtime import VerificationEngine, VerificationReport
from repro.pls.model import Configuration, ViewFactory

#: Default frontier radius: the touched vertices plus their neighbors.
DEFAULT_FRONTIER_HOPS = 1


@dataclass
class RegionReport:
    """What one dirty-region (or escalated full) round learned."""

    accepted: bool
    verdicts: dict  # vertex -> bool, region vertices only
    region: tuple  # sorted vertices the round verified
    vertices_total: int
    frontier_hops: int
    mode: str  # "region" | "full"
    rejections: tuple = ()
    elapsed_seconds: float = 0.0
    #: Set when ``mode == "full"``: the engine's whole-graph report.
    full_report: Optional[VerificationReport] = field(
        default=None, repr=False
    )

    @property
    def region_size(self) -> int:
        return len(self.region)

    def to_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "mode": self.mode,
            "region_size": self.region_size,
            "vertices_total": self.vertices_total,
            "frontier_hops": self.frontier_hops,
            "rejections": [repr(v) for v in self.rejections],
            "elapsed_seconds": self.elapsed_seconds,
        }


class DirtyRegionExecutor:
    """Verifies dirty neighborhoods; escalates to full rounds on demand."""

    def __init__(
        self,
        engine: Optional[VerificationEngine] = None,
        frontier_hops: int = DEFAULT_FRONTIER_HOPS,
    ):
        if frontier_hops < 0:
            raise ValueError("frontier_hops must be >= 0")
        self.engine = engine or VerificationEngine()
        self.frontier_hops = frontier_hops

    def __repr__(self) -> str:
        return (
            f"DirtyRegionExecutor(frontier_hops={self.frontier_hops}, "
            f"engine={self.engine!r})"
        )

    # ------------------------------------------------------------------
    def region_for(self, graph, dirty_vertices) -> set:
        """The dirty set grown by ``frontier_hops`` neighborhoods."""
        region = {v for v in dirty_vertices if v in graph}
        frontier = set(region)
        for _hop in range(self.frontier_hops):
            grown: set = set()
            for v in frontier:
                grown.update(graph.neighbors(v))
            grown -= region
            if not grown:
                break
            region.update(grown)
            frontier = grown
        return region

    # ------------------------------------------------------------------
    def verify_region(
        self,
        config: Configuration,
        scheme,
        labeling,
        dirty_vertices,
    ) -> RegionReport:
        """One region round: dirty vertices + frontier, nothing else."""
        start = perf_counter()
        graph = config.graph
        region = sorted(
            self.region_for(graph, dirty_vertices), key=repr
        )
        factory = ViewFactory(config, labeling.mapping, labeling.location)
        verdicts: dict = {}
        rejections: list = []
        for vertex in region:
            try:
                ok = bool(scheme.verify(factory.view(vertex)))
            except Exception:
                # Same contract as the engine: a raising verifier is a
                # rejection, not an error.
                ok = False
            verdicts[vertex] = ok
            if not ok:
                rejections.append(vertex)
        accepted = not rejections and len(verdicts) == len(region)
        return RegionReport(
            accepted=accepted,
            verdicts=verdicts,
            region=tuple(region),
            vertices_total=graph.n,
            frontier_hops=self.frontier_hops,
            mode="region",
            rejections=tuple(rejections),
            elapsed_seconds=perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def full_round(self, config: Configuration, scheme, labeling) -> RegionReport:
        """The escape hatch: a whole-graph round through the engine."""
        report = self.engine.verify(config, scheme, labeling)
        return RegionReport(
            accepted=report.accepted,
            verdicts=dict(report.verdicts),
            region=tuple(sorted(report.verdicts, key=repr)),
            vertices_total=report.vertices_total,
            frontier_hops=self.frontier_hops,
            mode="full",
            rejections=tuple(report.rejecting_vertices),
            elapsed_seconds=report.elapsed_seconds,
            full_report=report,
        )
