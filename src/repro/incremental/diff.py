"""Structural diff: map an edit batch to dirty bags and repair locally.

The cached path decomposition is the expensive structural artifact — at
production sizes the witness search dominates cold certification.  Most
single edits barely perturb it:

* ``remove_edge`` never invalidates a decomposition: (P1) only loses an
  obligation and (P2) is untouched.  The bags that covered the edge are
  dirty (their certificates change); the bag *sequence* survives.
* ``add_edge {u, v}`` is free when some bag already contains both
  endpoints — (P1) is satisfied as-is.  Otherwise the endpoints'
  intervals are disjoint (by (P2), overlapping intervals share a bag),
  and the repair extends the cheaper endpoint's interval across the gap
  so one bag contains both.  Every extended bag grows by one vertex, so
  the width bound ``k`` is checked bag by bag.
* Label edits dirty the covering bags' certificates (edge labels ride
  the construction sequence as tags) but never the bag sequence; vertex
  labels dirty nothing at all — no pipeline stage reads them.

When the repair cannot hold the width bound, or the dirty region
exceeds ``max_dirty_fraction`` of the bags (a repaired-but-mostly-dirty
decomposition reuses nothing and may have drifted far from optimal),
the result is a **fallback**: the caller re-runs the full decomposition
search.  The escape hatch is part of the contract — soundness never
depends on the repair, only the amount of reused work does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.graphs import Graph
from repro.graphs.edits import EditBatch
from repro.pathwidth.path_decomposition import PathDecomposition

#: Dirty fraction beyond which repairing is pointless (see module doc).
DEFAULT_MAX_DIRTY_FRACTION = 0.25


@dataclass
class RepairResult:
    """Outcome of one repair attempt.

    ``decomposition`` is a decomposition *of the edited graph* when the
    repair succeeded, else ``None`` and ``fallback`` explains why the
    caller must re-run the full search.  ``dirty_bags`` indexes the bags
    whose covered certificates the batch may have changed (on fallback:
    every bag).
    """

    decomposition: Optional[PathDecomposition]
    dirty_bags: Tuple[int, ...]
    fallback: bool = False
    reason: str = ""
    extended_bags: int = 0

    @property
    def dirty_count(self) -> int:
        return len(self.dirty_bags)


@dataclass
class _Bags:
    """Mutable bag sequence with vertex-interval bookkeeping."""

    bags: list  # list[set]
    intervals: dict = field(default_factory=dict)  # vertex -> [lo, hi]

    @classmethod
    def of(cls, decomposition: PathDecomposition) -> "_Bags":
        bags = [set(bag) for bag in decomposition.bags]
        state = cls(bags)
        for index, bag in enumerate(bags):
            for v in bag:
                interval = state.intervals.get(v)
                if interval is None:
                    state.intervals[v] = [index, index]
                else:
                    interval[1] = index
        return state

    def covering(self, u, v) -> list:
        """Indices of bags containing both ``u`` and ``v``."""
        iu, iv = self.intervals.get(u), self.intervals.get(v)
        if iu is None or iv is None:
            return []
        lo, hi = max(iu[0], iv[0]), min(iu[1], iv[1])
        return [
            i
            for i in range(lo, hi + 1)
            if u in self.bags[i] and v in self.bags[i]
        ]

    def holding(self, v) -> list:
        """Indices of bags containing ``v``."""
        interval = self.intervals.get(v)
        if interval is None:
            return []
        return [
            i
            for i in range(interval[0], interval[1] + 1)
            if v in self.bags[i]
        ]

    def extend(self, vertex, bag_indices) -> None:
        """Add ``vertex`` to a contiguous run of bags."""
        for index in bag_indices:
            self.bags[index].add(vertex)
        interval = self.intervals[vertex]
        interval[0] = min(interval[0], min(bag_indices))
        interval[1] = max(interval[1], max(bag_indices))


def repair_decomposition(
    decomposition: PathDecomposition,
    new_graph: Graph,
    batch: EditBatch,
    k: int,
    max_dirty_fraction: float = DEFAULT_MAX_DIRTY_FRACTION,
) -> RepairResult:
    """Repair ``decomposition`` into one for ``new_graph`` after ``batch``.

    ``new_graph`` must be the result of applying ``batch`` to the graph
    ``decomposition`` was built for.  Returns a :class:`RepairResult`;
    on success the decomposition is constructed without re-validation
    (the repair rules preserve (P1)/(P2) by construction — the
    equivalence suite cross-checks with ``validate()``).
    """
    total = len(decomposition.bags)
    if total == 0:
        return RepairResult(None, (), fallback=True, reason="empty")
    state = _Bags.of(decomposition)
    dirty: set = set()
    extended = 0

    for edit in batch:
        if edit.kind == "remove_edge":
            dirty.update(state.covering(edit.u, edit.v))
        elif edit.kind == "set_edge_label":
            dirty.update(state.covering(edit.u, edit.v))
        elif edit.kind == "set_vertex_label":
            continue  # no stage reads vertex labels; nothing dirties
        elif edit.kind == "add_edge":
            u, v = edit.u, edit.v
            covered = state.covering(u, v)
            if covered:
                dirty.update(covered)
                continue
            iu, iv = state.intervals.get(u), state.intervals.get(v)
            if iu is None or iv is None:
                return RepairResult(
                    None,
                    tuple(range(total)),
                    fallback=True,
                    reason="endpoint missing from bags",
                )
            # Disjoint intervals (overlap would share a bag by (P2)).
            # Bridge the gap by walking the nearer endpoint across.
            if iu[0] > iv[1]:
                u, v, iu, iv = v, u, iv, iu
            span = range(iu[1] + 1, iv[0] + 1)
            if any(len(state.bags[i]) + 1 > k + 1 for i in span):
                return RepairResult(
                    None,
                    tuple(range(total)),
                    fallback=True,
                    reason=f"width would exceed k={k}",
                )
            state.extend(u, span)
            extended += len(span)
            dirty.update(span)
        else:  # pragma: no cover - EDIT_KINDS is closed
            return RepairResult(
                None,
                tuple(range(total)),
                fallback=True,
                reason=f"unknown edit kind {edit.kind!r}",
            )

    if len(dirty) > max_dirty_fraction * total:
        # Policy fallback: the repair *succeeded* structurally, but so
        # much is dirty that rebuilding every certificate from scratch
        # is the better deal.  Keep the repaired bags — they are still
        # the valid witness the rebuild should run over.
        return RepairResult(
            PathDecomposition(new_graph, state.bags, validate=False),
            tuple(sorted(dirty)),
            fallback=True,
            reason=(
                f"dirty region {len(dirty)}/{total} exceeds "
                f"max_dirty_fraction={max_dirty_fraction}"
            ),
            extended_bags=extended,
        )
    repaired = PathDecomposition(new_graph, state.bags, validate=False)
    return RepairResult(
        repaired,
        tuple(sorted(dirty)),
        extended_bags=extended,
    )


def witness_decomposer(decomposition: PathDecomposition):
    """Wrap a known decomposition as a plan-cacheable decomposer.

    The ``cache_key`` digests the *bag contents*, so two different
    repairs of the same graph can never collide in the artifact cache —
    the fingerprint chain stays honest about what was decomposed how.
    """
    import hashlib

    bags = [tuple(bag) for bag in decomposition.bags]
    digest = hashlib.blake2b(digest_size=12)
    for bag in bags:
        digest.update(repr(bag).encode())
        digest.update(b"\x00")

    def decompose(graph: Graph) -> PathDecomposition:
        return PathDecomposition(graph, bags, validate=False)

    decompose.cache_key = "bags:" + digest.hexdigest()
    return decompose
