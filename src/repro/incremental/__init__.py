"""repro.incremental — edit-batch recertification for evolving graphs.

Local certification's home turf is self-stabilization: networks that
*change* and must keep their certified invariants current.  This package
closes that loop over the reproduction's pipeline:

* :mod:`repro.graphs.edits` (substrate layer) declares the edit
  vocabulary and applies batches strictly;
* :mod:`repro.incremental.diff` maps a batch to dirty bags of the
  cached path decomposition and repairs it locally, falling back to the
  full search when the width bound or dirty-fraction threshold trips;
* :mod:`repro.incremental.executor` re-verifies only the dirty region
  plus a certified frontier, with a full-round escape hatch;
* :mod:`repro.incremental.certifier` ties the layers together over a
  :class:`~repro.api.session.CertificationSession`, reusing untouched
  plan-DAG artifacts through the content-fingerprint chain.

The service (:mod:`repro.service`) exposes the whole path as an
``update`` op, so deployments stream edits instead of re-shipping
graphs.
"""

from repro.incremental.certifier import (
    IncrementalCertifier,
    IncrementalMetrics,
    IncrementalReport,
)
from repro.incremental.diff import (
    DEFAULT_MAX_DIRTY_FRACTION,
    RepairResult,
    repair_decomposition,
    witness_decomposer,
)
from repro.incremental.executor import (
    DEFAULT_FRONTIER_HOPS,
    DirtyRegionExecutor,
    RegionReport,
)

__all__ = [
    "IncrementalCertifier",
    "IncrementalMetrics",
    "IncrementalReport",
    "DEFAULT_MAX_DIRTY_FRACTION",
    "RepairResult",
    "repair_decomposition",
    "witness_decomposer",
    "DEFAULT_FRONTIER_HOPS",
    "DirtyRegionExecutor",
    "RegionReport",
]
