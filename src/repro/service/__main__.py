"""``python -m repro.service`` — run the certification daemon.

    python -m repro.service --socket /tmp/repro.sock --store certs/ --k 2
    python -m repro.service --port 7341 --store certs/ --byte-budget 512MiB

Prints ``SERVICE_READY <address>`` once listening (wrappers wait for
that line) and ``SERVICE_METRICS <json>`` as the final act of a
graceful shutdown (SIGTERM, SIGINT, or a ``shutdown`` request).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.service.daemon import Daemon
from repro.service.service import CertificationService, ServiceConfig

_SIZE_SUFFIXES = {
    "kib": 1024,
    "mib": 1024**2,
    "gib": 1024**3,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
}


def parse_bytes(text: str) -> int:
    """Parse ``123``, ``512MiB``, ``2GB`` ... into a byte count."""
    lowered = text.strip().lower()
    for suffix, factor in _SIZE_SUFFIXES.items():
        if lowered.endswith(suffix):
            return int(float(lowered[: -len(suffix)]) * factor)
    return int(lowered)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Local-certification daemon: certify / reverify / "
        "audit over a sharded certificate store, JSON lines over a "
        "socket.",
    )
    endpoint = parser.add_mutually_exclusive_group(required=True)
    endpoint.add_argument(
        "--socket", metavar="PATH", help="serve on a unix socket"
    )
    endpoint.add_argument(
        "--port", type=int, metavar="PORT", help="serve on TCP (0 = ephemeral)"
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (default: loopback)"
    )
    parser.add_argument(
        "--store", required=True, metavar="DIR",
        help="certificate store root (created if absent)",
    )
    parser.add_argument(
        "--k", type=int, default=2,
        help="default pathwidth bound for certify requests (default: 2)",
    )
    parser.add_argument(
        "--exact-limit", type=int, default=None, metavar="N",
        help="exact-decomposition cutoff override (see DecomposeStage)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="blocking worker threads (default: 2)",
    )
    parser.add_argument(
        "--prover-workers", type=int, default=0, metavar="N",
        help="per-thread resident ParallelProver pool size (0 = serial)",
    )
    parser.add_argument(
        "--engine-workers", type=int, default=0, metavar="N",
        help="per-thread resident executor pool size (0 = serial)",
    )
    parser.add_argument(
        "--engine", default="serial", metavar="KIND",
        help="verification executor kind: serial, parallel, vectorized,"
        " or shared-memory (default: serial; serial with"
        " --engine-workers>0 upgrades to parallel)",
    )
    parser.add_argument(
        "--byte-budget", type=parse_bytes, default=None, metavar="BYTES",
        help="store size cap with LRU eviction (e.g. 512MiB; default: none)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="max seconds to wait for in-flight requests on shutdown",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        store_root=args.store,
        k=args.k,
        exact_limit=args.exact_limit,
        worker_threads=args.workers,
        prover_workers=args.prover_workers,
        engine_workers=args.engine_workers,
        engine=args.engine,
        byte_budget=args.byte_budget,
        drain_timeout=args.drain_timeout,
    )
    service = CertificationService(config)
    daemon = Daemon(
        service,
        host=args.host,
        port=args.port,
        socket_path=args.socket,
    )
    try:
        asyncio.run(daemon.run(ready_line=True))
    except KeyboardInterrupt:
        pass  # the signal handler already drained; double-^C lands here
    return 0


if __name__ == "__main__":
    sys.exit(main())
