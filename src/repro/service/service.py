"""The asyncio certification front-end.

:class:`CertificationService` is the long-running heart of
``python -m repro.service``: it accepts decoded protocol requests
(:mod:`repro.service.protocol`), coalesces identical concurrent work
(:mod:`repro.service.coalesce`), and bridges the blocking certification
machinery onto the event loop through a thread pool — each worker
thread owns its own :class:`~repro.api.session.CertificationSession`
(and, when configured, its own pool-resident
:class:`~repro.api.prover.ParallelProver` /
:class:`~repro.api.runtime.ParallelExecutor`), while all threads share
one sharded :class:`~repro.api.store.CertificateStore` — the store's
writes are atomic and its artifact cache is fingerprint-addressed, so
concurrent writers are safe by construction.

Request lifecycle (the shape ``docs/ARCHITECTURE.md`` § "The service
layer" diagrams):

1. the event loop parses the graph payload and computes its
   fingerprint — the content identity everything downstream keys on;
2. the coalescer either joins an identical in-flight job or starts a
   new one;
3. the job runs on a worker thread: certificate-store hit → load (+
   optional re-verification round), miss → full plan-based
   certification through the thread's session (which persists both the
   certificate and the prover artifacts for the next request);
4. the JSON report dictionaries stream back; metrics record latency,
   coalescing, and hit/miss on the way out.

The service object is transport-agnostic — the TCP/unix-socket daemon
(:mod:`repro.service.daemon`) and in-process tests both drive
:meth:`handle` directly.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Optional

from repro.api import (
    AuditCase,
    AuditPlan,
    CertificateStore,
    CertificationSession,
    DropAttack,
    MutationAttack,
    ParallelExecutor,
    ParallelProver,
    StoreError,
    SwapAttack,
    VerificationEngine,
)
from repro.graphs.edits import EditBatch, EditError
from repro.incremental import IncrementalCertifier
from repro.pls.model import Configuration

from repro.service.coalesce import Coalescer
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    graph_from_wire,
    ok_response,
    validate_request,
)

#: Attack classes the ``audit`` op can mount by name.  The heavier,
#: callback-parameterized attacks (transplant, graph edits with
#: ``still_true`` oracles) need code, not JSON — audit those through
#: :class:`~repro.api.audit.AuditPlan` directly.
AUDIT_ATTACKS = {
    "mutation": MutationAttack,
    "swap": SwapAttack,
    "drop": DropAttack,
}


class ServiceError(ValueError):
    """A request the service understood but must refuse."""


@dataclass
class ServiceConfig:
    """Everything a daemon instance is parameterized by.

    ``prover_workers`` / ``engine_workers`` of 0 keep proving and
    verification serial *within* a request (requests still overlap
    through ``worker_threads``); positive values give each worker
    thread its own resident process pool of that size — the
    PR 4/5 pool-resident dispatch, bridged behind the event loop.
    """

    store_root: Path
    k: int = 2
    exact_limit: Optional[int] = None
    worker_threads: int = 2
    prover_workers: int = 0
    engine_workers: int = 0
    #: Verification executor kind: any :func:`repro.api.runtime
    #: .executor_names` entry ("serial", "parallel", "vectorized",
    #: "shared-memory").  "serial" with ``engine_workers > 0`` keeps the
    #: pre-PR 8 behaviour of upgrading to a resident process pool.
    engine: str = "serial"
    byte_budget: Optional[int] = None
    #: Seconds the daemon waits for in-flight requests on shutdown.
    drain_timeout: float = 30.0

    def __post_init__(self):
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be positive")
        if self.prover_workers < 0 or self.engine_workers < 0:
            raise ValueError("pool worker counts cannot be negative")
        from repro.api.runtime import executor_names

        self.engine = self.engine.strip().lower().replace("_", "-")
        if self.engine not in executor_names():
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"choose from {', '.join(executor_names())}"
            )


class CertificationService:
    """Certify / reverify / audit over one store, concurrently."""

    def __init__(
        self,
        config: ServiceConfig,
        store: Optional[CertificateStore] = None,
        metrics: Optional[ServiceMetrics] = None,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.store = store if store is not None else CertificateStore(
            config.store_root, byte_budget=config.byte_budget
        )
        self.coalescer = Coalescer()
        self._pool = ThreadPoolExecutor(
            max_workers=config.worker_threads,
            thread_name_prefix="repro-service",
        )
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._sessions: list = []  # every thread-local session (for stats)
        self._closeables: list = []  # resident pools to close on shutdown
        #: (fingerprint, properties, k) -> (stream lock, certifier).
        #: Each edit stream owns its certifier (and that certifier its
        #: session — never shared with a thread-local certify session);
        #: the stream lock serializes updates, and the entry is re-keyed
        #: to the evolved fingerprint after every applied batch.
        self._incremental: dict = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Thread-local blocking machinery (created inside worker threads).
    # ------------------------------------------------------------------
    def _engine(self) -> VerificationEngine:
        engine = getattr(self._tls, "engine", None)
        if engine is None:
            name = self.config.engine
            if name == "serial" and self.config.engine_workers > 0:
                name = "parallel"  # pre-PR 8 upgrade path
            if name == "serial":
                executor = None
            else:
                from repro.api.runtime import make_executor

                kwargs = {}
                if (
                    name in ("parallel", "shared-memory")
                    and self.config.engine_workers > 0
                ):
                    kwargs["max_workers"] = self.config.engine_workers
                executor = make_executor(name, **kwargs)
                if hasattr(executor, "close"):
                    with self._lock:
                        self._closeables.append(executor)
            engine = VerificationEngine(executor)
            self._tls.engine = engine
        return engine

    def _session_for(self, k: int) -> CertificationSession:
        sessions = getattr(self._tls, "sessions", None)
        if sessions is None:
            sessions = self._tls.sessions = {}
        session = sessions.get(k)
        if session is None:
            prover = None
            if self.config.prover_workers > 0:
                prover = ParallelProver(max_workers=self.config.prover_workers)
            session = CertificationSession(
                k=k,
                exact_limit=self.config.exact_limit,
                engine=self._engine(),
                store=self.store,
                prover=prover,
            )
            sessions[k] = session
            with self._lock:
                self._sessions.append(session)
                if prover is not None:
                    self._closeables.append(prover)
        return session

    # ------------------------------------------------------------------
    # The async request surface.
    # ------------------------------------------------------------------
    async def handle(self, request: dict) -> dict:
        """Serve one decoded request; always returns a response dict."""
        began = perf_counter()
        request_id = request.get("id")
        op = request.get("op")
        coalesced = False
        try:
            validate_request(request)
            if self._closed:
                raise ServiceError("service is shutting down")
            self.metrics.request_started(op)
        except ProtocolError as exc:
            return error_response(request_id, str(exc))
        except ServiceError as exc:
            return error_response(request_id, str(exc))
        try:
            if op == "ping":
                result = {"pong": True, "protocol_version": PROTOCOL_VERSION}
            elif op == "metrics":
                result = self.snapshot()
            elif op == "shutdown":
                # The daemon owns the lifecycle; it watches for this op
                # and starts draining after the response is written.
                result = {"stopping": True}
            elif op == "certify":
                result, coalesced = await self._certify(request)
            elif op == "reverify":
                result, coalesced = await self._reverify(request)
            elif op == "update":
                result, coalesced = await self._update(request)
            else:  # op == "audit"
                result, coalesced = await self._audit(request)
        except (ProtocolError, ServiceError, StoreError, ValueError) as exc:
            latency = perf_counter() - began
            self.metrics.request_failed(op, latency)
            return error_response(
                request_id, str(exc), latency_s=round(latency, 6)
            )
        latency = perf_counter() - began
        self.metrics.request_completed(op, latency)
        if coalesced:
            self.metrics.coalesced()
        return ok_response(
            request_id,
            result,
            coalesced=coalesced,
            latency_s=round(latency, 6),
        )

    # ------------------------------------------------------------------
    def _properties_of(self, request: dict) -> list:
        properties = request.get("properties")
        if isinstance(properties, str):
            properties = [properties]
        if not isinstance(properties, list) or not properties:
            raise ProtocolError(
                "certify needs 'properties': a registry key or list of keys"
            )
        if not all(isinstance(p, str) for p in properties):
            raise ProtocolError("property keys must be strings on the wire")
        if len(set(properties)) != len(properties):
            raise ProtocolError("duplicate property keys in one request")
        return properties

    async def _dispatch(self, key, job):
        """Coalesce ``job`` (a blocking callable) under ``key``."""
        loop = asyncio.get_running_loop()
        return await self.coalescer.run(
            key, lambda: loop.run_in_executor(self._pool, job)
        )

    async def _certify(self, request: dict):
        if "graph" not in request:
            raise ProtocolError("certify needs a 'graph' payload")
        graph = graph_from_wire(request["graph"])
        properties = self._properties_of(request)
        k = int(request.get("k", self.config.k))
        fresh = bool(request.get("fresh", False))
        verify = bool(request.get("verify", True))
        fingerprint = graph.fingerprint()
        key = (
            "certify",
            fingerprint,
            tuple(properties),
            k,
            fresh,
            verify,
        )
        return await self._dispatch(
            key,
            lambda: self._certify_blocking(
                graph, properties, k, fresh, verify, fingerprint
            ),
        )

    def _certify_blocking(
        self, graph, properties, k, fresh, verify, fingerprint
    ) -> dict:
        reports = {}
        served = {}
        missing = []
        for prop in properties:
            if not fresh and (fingerprint, prop) in self.store:
                try:
                    if verify:
                        report = self.store.reverify(
                            fingerprint, prop, engine=self._engine()
                        )
                        self.metrics.kernel_round(
                            getattr(
                                report.verification, "kernel_stats", None
                            )
                        )
                    else:
                        # Serving without the round: skip decoding the
                        # per-edge certificates too — the report JSON
                        # rides in the envelope, and decode dominates
                        # rehydration cost.
                        report = self.store.load(
                            fingerprint, prop, decode=False
                        )
                    reports[prop] = report
                    served[prop] = "store"
                    self.metrics.store_served(True)
                    continue
                except StoreError:
                    pass  # corrupt or raced-away entry: re-prove it
            missing.append(prop)
        if missing:
            self.metrics.prover_run()
            session = self._session_for(k)
            fresh_structure = True
            for prop, report in session.certify(
                graph, list(missing), verify=verify
            ).items():
                reports[prop] = report
                served[prop] = "prover"
                self.metrics.store_served(False)
                self.metrics.encode_run(
                    getattr(report, "encode_seconds", 0.0)
                )
                self.metrics.kernel_round(
                    getattr(report.verification, "kernel_stats", None)
                )
                if fresh_structure:
                    # One decomposition serves the whole property batch;
                    # count it once per prover run.
                    self.metrics.decomposition_run(
                        getattr(report, "decomposition_stats", None)
                    )
                    fresh_structure = False
        return {
            "fingerprint": fingerprint,
            "served": served,
            "reports": {
                prop: reports[prop].to_dict() for prop in properties
            },
        }

    async def _reverify(self, request: dict):
        fingerprint = request.get("fingerprint")
        prop = request.get("property")
        if not isinstance(fingerprint, str) or not isinstance(prop, str):
            raise ProtocolError(
                "reverify needs string 'fingerprint' and 'property'"
            )
        key = ("reverify", fingerprint, prop)
        return await self._dispatch(
            key, lambda: self._reverify_blocking(fingerprint, prop)
        )

    def _reverify_blocking(self, fingerprint: str, prop: str) -> dict:
        report = self.store.reverify(fingerprint, prop, engine=self._engine())
        self.metrics.kernel_round(
            getattr(report.verification, "kernel_stats", None)
        )
        self.metrics.store_served(True)
        return {
            "fingerprint": fingerprint,
            "served": {prop: "store"},
            "reports": {prop: report.to_dict()},
        }

    async def _update(self, request: dict):
        properties = self._properties_of(request)
        k = int(request.get("k", self.config.k))
        force_full = bool(request.get("force_full", False))
        full_round_every = int(request.get("full_round_every", 0))
        edits_wire = request.get("edits", [])
        if not isinstance(edits_wire, list):
            raise ProtocolError("'edits' must be a list of wire edits")
        try:
            batch = EditBatch.from_wire(edits_wire) if edits_wire else None
        except EditError as exc:
            raise ProtocolError(f"malformed edits: {exc}") from exc
        graph = None
        if "graph" in request:
            graph = graph_from_wire(request["graph"])
            fingerprint = graph.fingerprint()
        else:
            fingerprint = request.get("fingerprint")
            if not isinstance(fingerprint, str):
                raise ProtocolError(
                    "update needs a 'graph' payload (bootstrap) or the "
                    "previous response's 'fingerprint'"
                )
            if batch is None:
                raise ProtocolError(
                    "update addressed by fingerprint needs non-empty 'edits'"
                )
        # The canonical wire form (not the raw payload) keys coalescing,
        # so equivalent spellings of one batch join the same job.
        edits_key = repr(batch.to_wire()) if batch is not None else ""
        key = (
            "update",
            fingerprint,
            tuple(properties),
            k,
            edits_key,
            force_full,
        )
        return await self._dispatch(
            key,
            lambda: self._update_blocking(
                graph, fingerprint, batch, properties, k,
                force_full, full_round_every,
            ),
        )

    def _update_blocking(
        self, graph, fingerprint, batch, properties, k,
        force_full, full_round_every,
    ) -> dict:
        registry_key = (fingerprint, tuple(properties), k)
        with self._lock:
            entry = self._incremental.get(registry_key)
            if entry is None:
                if graph is None:
                    raise ServiceError(
                        f"no incremental state for fingerprint "
                        f"{fingerprint!r} with these properties and k={k} "
                        "(bootstrap with a 'graph' payload first)"
                    )
                certifier = IncrementalCertifier(
                    graph,
                    list(properties),
                    k=k,
                    session=CertificationSession(
                        k=k,
                        exact_limit=self.config.exact_limit,
                        store=self.store,
                    ),
                    full_round_every=full_round_every,
                )
                entry = (threading.Lock(), certifier)
                self._incremental[registry_key] = entry
        stream_lock, certifier = entry
        with stream_lock:
            if certifier.graph.fingerprint() != fingerprint:
                # A concurrent non-identical update evolved this stream
                # first; the caller's address is one state behind.
                raise ServiceError(
                    f"stale fingerprint {fingerprint!r}: the stream has "
                    "already evolved past it (re-address with the latest "
                    "response's fingerprint)"
                )
            baseline = None
            if not certifier.baselined:
                self.metrics.prover_run()
                baseline = certifier.baseline()
            update = None
            if batch is not None:
                update = certifier.update(batch, force_full=force_full)
                self.metrics.incremental_update(
                    bags_dirtied=(
                        0 if update.repair.fallback
                        else update.repair.dirty_count
                    ),
                    artifacts_reused=update.artifacts_reused,
                    fallback=update.repair.fallback,
                )
                new_key = (
                    update.fingerprint, tuple(properties), k,
                )
                with self._lock:
                    if self._incremental.get(registry_key) is entry:
                        del self._incremental[registry_key]
                    self._incremental[new_key] = entry
        return {
            "fingerprint": certifier.graph.fingerprint(),
            "base_fingerprint": fingerprint,
            "properties": list(properties),
            "k": k,
            "baseline": baseline.to_dict() if baseline is not None else None,
            "update": update.to_dict() if update is not None else None,
            "metrics": certifier.metrics.to_dict(),
        }

    async def _audit(self, request: dict):
        if "graph" not in request:
            raise ProtocolError("audit needs a 'graph' payload")
        graph = graph_from_wire(request["graph"])
        prop = request.get("property")
        if not isinstance(prop, str):
            raise ProtocolError("audit needs a string 'property'")
        k = int(request.get("k", self.config.k))
        trials = int(request.get("trials", 3))
        seed = int(request.get("seed", 0))
        # Specs normalize to hashable (name, per_case) pairs: the dict
        # spelling must coalesce with its string shorthand.
        specs = tuple(
            self._normalize_spec(spec)
            for spec in request.get("attacks", ("mutation",))
        )
        attacks = [self._attack_from_spec(spec) for spec in specs]
        fingerprint = graph.fingerprint()
        key = ("audit", fingerprint, prop, k, trials, seed, specs)
        return await self._dispatch(
            key,
            lambda: self._audit_blocking(
                graph, prop, k, trials, seed, attacks, fingerprint
            ),
        )

    def _normalize_spec(self, spec):
        if isinstance(spec, str):
            return spec, 1
        if isinstance(spec, dict):
            try:
                return spec.get("name"), int(spec.get("per_case", 1))
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed attack spec: {spec!r}"
                ) from exc
        raise ProtocolError(f"malformed attack spec: {spec!r}")

    def _attack_from_spec(self, spec):
        name, per_case = spec
        factory = AUDIT_ATTACKS.get(name)
        if factory is None:
            raise ProtocolError(
                f"unknown attack {name!r} (serveable attacks: "
                f"{', '.join(sorted(AUDIT_ATTACKS))})"
            )
        return factory(per_case=per_case)

    def _audit_blocking(
        self, graph, prop, k, trials, seed, attacks, fingerprint
    ) -> dict:
        session = self._session_for(k)
        self.metrics.prover_run()

        def case_factory(trial, rng):
            config = Configuration.with_random_ids(graph, rng)
            report = session.certify(config, [prop], verify=False)[prop]
            if report.refused:
                raise ServiceError(
                    f"cannot audit {prop!r}: the honest prover refused "
                    f"({report.refusal})"
                )
            return AuditCase(report.config, report.scheme, report.labeling, trial)

        plan = AuditPlan(
            case_factory,
            attacks,
            trials=trials,
            root_seed=seed,
            name="service-audit",
        )
        report = plan.run()  # fail-fast serial: only the accept bit matters
        return {"fingerprint": fingerprint, "audit": report.to_dict()}

    # ------------------------------------------------------------------
    # Observability and lifecycle.
    # ------------------------------------------------------------------
    def stage_counters(self) -> dict:
        """Summed prover stage counters across every worker session."""
        totals: dict = {}
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            for name, count in session.stage_counters.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def snapshot(self) -> dict:
        """The ``metrics`` op's response body: every layer, one dict."""
        snap = self.metrics.snapshot()
        snap["protocol_version"] = PROTOCOL_VERSION
        snap["engine"] = {
            "kind": self.config.engine,
            "workers": self.config.engine_workers,
        }
        snap["store"] = self.store.stats()
        snap["store_metrics"] = self.store.metrics.snapshot()
        snap["stage_counters"] = self.stage_counters()
        snap["coalescer_in_flight"] = len(self.coalescer)
        return snap

    @property
    def closed(self) -> bool:
        return self._closed

    def close_blocking(self) -> None:
        """Drain worker threads and release every resident pool.

        Idempotent.  New :meth:`handle` calls are refused the moment
        this starts; jobs already on worker threads run to completion
        (``ThreadPoolExecutor.shutdown(wait=True)``), then the
        pool-resident provers/executors shut their worker processes
        down — nothing leaks past this call.
        """
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        with self._lock:
            closeables = list(self._closeables)
            self._closeables.clear()
        for resource in closeables:
            resource.close()

    async def close(self) -> None:
        """Async wrapper over :meth:`close_blocking` (drains off-loop)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close_blocking)
