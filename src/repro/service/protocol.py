"""JSON-lines wire protocol for the certification service.

One request or response per ``\\n``-terminated UTF-8 JSON object — the
framing every language can speak from a socket without a schema
compiler.  The payloads inside reuse the JSON forms the API layer
already round-trips (``CertificationReport.to_dict`` /
``VerificationReport.to_dict`` / ``AuditReport.to_dict``), so the wire
format is the PR 2/3 serialization surface, not a new one.

Requests
--------
Every request is ``{"id": <any JSON scalar>, "op": <str>, ...params}``:

``ping``
    Liveness probe; responds ``{"pong": true}``.
``certify``
    ``graph`` (see :func:`graph_to_wire`), ``properties`` (key or list
    of keys), optional ``k`` (defaults to the daemon's), ``fresh``
    (``true`` forces re-proving past the store), ``verify`` (``false``
    skips the verification round — completeness guarantees honest
    acceptance, and the round can be replayed via ``reverify``).
``reverify``
    ``fingerprint`` + ``property``: run the verification round on the
    stored certificate, zero prover stages.
``audit``
    ``graph``, ``property``, optional ``k``/``trials``/``seed``/
    ``attacks`` (names from :data:`AUDIT_ATTACKS`) — a soundness
    campaign against a freshly proven honest labeling.
``update``
    Edit-stream recertification (:mod:`repro.incremental`).  Bootstrap
    with ``graph`` (+ ``properties``, optional ``k`` /
    ``full_round_every``); evolve with ``fingerprint`` (the previous
    response's ``result["fingerprint"]``) + non-empty ``edits`` (wire
    form of :meth:`~repro.graphs.edits.EditBatch.to_wire`), optional
    ``force_full`` to escalate the round.  The response's new
    ``fingerprint`` addresses the evolved state for the next update.
``metrics``
    Service + store counters as one JSON snapshot (including the
    incremental ``updates`` / ``bags_dirtied`` / ``artifacts_reused`` /
    ``full_fallbacks`` counters).
``shutdown``
    Ask the daemon to drain and exit (responds before exiting).

Responses
---------
``{"id": ..., "ok": true, "result": {...}, "meta": {...}}`` or
``{"id": ..., "ok": false, "error": "...", "meta": {...}}``.  ``meta``
carries per-request observability: ``latency_s`` and ``coalesced``
(this response was served by a computation another concurrent request
started — see :mod:`repro.service.coalesce`).
"""

from __future__ import annotations

import json

from repro.graphs import Graph

#: Protocol version, echoed by ``ping``; bump on breaking wire changes.
PROTOCOL_VERSION = 1

#: Upper bound on one framed line.  Generous (a graph with millions of
#: edges fits), but bounded — a stream that claims more is a broken or
#: hostile peer, and the daemon must not buffer it to death.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Request operations the service understands.
OPS = (
    "ping",
    "certify",
    "reverify",
    "audit",
    "update",
    "metrics",
    "shutdown",
)


class ProtocolError(ValueError):
    """Raised on malformed frames or requests."""


# ----------------------------------------------------------------------
# Graph wire form.
# ----------------------------------------------------------------------
def graph_to_wire(graph: Graph) -> dict:
    """JSON-safe form of a :class:`~repro.graphs.Graph`.

    Vertices must be JSON scalars (ints everywhere in this code base);
    optional finite input labels ride along as pair/triple lists —
    JSON objects can't key on non-strings, so lists it is.
    """
    payload = {
        "vertices": list(graph.vertices()),
        "edges": [[u, v] for (u, v) in graph.edges()],
    }
    if graph.vertex_labels():
        payload["vertex_labels"] = [
            [v, label] for v, label in sorted(graph.vertex_labels().items())
        ]
    if graph.edge_labels():
        payload["edge_labels"] = [
            [u, v, label]
            for (u, v), label in sorted(graph.edge_labels().items())
        ]
    return payload


def graph_from_wire(payload) -> Graph:
    """Rebuild a :class:`~repro.graphs.Graph` from :func:`graph_to_wire`."""
    if not isinstance(payload, dict):
        raise ProtocolError("graph payload must be an object")
    try:
        vertices = payload.get("vertices", [])
        edges = payload.get("edges", [])
        graph = Graph(vertices, ((u, v) for u, v in edges))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed graph payload: {exc}") from exc
    for v, label in payload.get("vertex_labels", []):
        graph.set_vertex_label(v, label)
    for u, v, label in payload.get("edge_labels", []):
        graph.set_edge_label(u, v, label)
    return graph


# ----------------------------------------------------------------------
# Framing.
# ----------------------------------------------------------------------
def encode_line(message: dict) -> bytes:
    """Frame one message as a ``\\n``-terminated UTF-8 JSON line."""
    return json.dumps(
        message, separators=(",", ":"), sort_keys=True
    ).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one framed line; raise :class:`ProtocolError` if malformed."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds MAX_LINE_BYTES"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def validate_request(request: dict) -> str:
    """Check the request envelope; return its ``op``."""
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(OPS)})"
        )
    return op


def ok_response(request_id, result, **meta) -> dict:
    return {"id": request_id, "ok": True, "result": result, "meta": meta}


def error_response(request_id, error: str, **meta) -> dict:
    return {"id": request_id, "ok": False, "error": error, "meta": meta}
