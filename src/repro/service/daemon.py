"""The JSON-lines socket daemon around :class:`CertificationService`.

:class:`Daemon` binds a TCP port or unix socket, reads one framed
request per line (:mod:`repro.service.protocol`), and serves each as
its own :class:`asyncio.Task` — pipelined requests on a single
connection overlap, which is what lets one client's identical
back-to-back requests coalesce.  Responses are written under a
per-connection lock, so they may interleave *across* requests but never
*within* a frame; clients correlate by request ``id``.

Graceful shutdown (SIGTERM/SIGINT or a ``shutdown`` request): stop
accepting connections, wait up to ``config.drain_timeout`` seconds for
in-flight request tasks, close the service (worker threads drained,
resident prover/verifier pools released — no leaked worker processes),
and emit one final ``SERVICE_METRICS {json}`` line on stdout so the
last metrics snapshot survives the process.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Optional

from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
)
from repro.service.service import CertificationService


class Daemon:
    """One serving endpoint (TCP or unix socket) over one service."""

    def __init__(
        self,
        service: CertificationService,
        host: Optional[str] = None,
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
    ):
        if socket_path is None and port is None:
            raise ValueError("need a TCP port or a unix socket path")
        self.service = service
        self.host = host or "127.0.0.1"
        self.port = port
        self.socket_path = socket_path
        self.address: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: set = set()
        self._stopping: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    async def start(self) -> str:
        """Bind and start accepting; return the printable address."""
        self._stopping = asyncio.Event()
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=self.socket_path
            )
            self.address = f"unix:{self.socket_path}"
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"tcp:{bound[0]}:{bound[1]}"
        return self.address

    def request_stop(self) -> None:
        """Begin graceful shutdown (idempotent, callable from handlers)."""
        if self._stopping is not None:
            self._stopping.set()

    async def run(self, ready_line: bool = False) -> None:
        """Start, serve until asked to stop, then drain and close.

        ``ready_line=True`` prints ``SERVICE_READY <address>`` once
        listening — the handshake ``python -m repro.service`` offers so
        wrappers (CI, the examples, the E11 benchmark) can wait for a
        live endpoint instead of polling the socket.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        if ready_line:
            print(f"SERVICE_READY {self.address}", flush=True)
        try:
            await self._stopping.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self._shutdown()

    async def _shutdown(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        pending = {task for task in self._tasks if not task.done()}
        if pending:
            await asyncio.wait(
                pending, timeout=self.service.config.drain_timeout
            )
        await self.service.close()
        print(
            "SERVICE_METRICS " + json.dumps(self.service.snapshot(), sort_keys=True),
            flush=True,
        )

    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._respond(line, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _respond(self, line: bytes, writer, write_lock) -> None:
        shutdown_requested = False
        try:
            request = decode_line(line)
        except ProtocolError as exc:
            response = error_response(None, str(exc))
        else:
            response = await self.service.handle(request)
            shutdown_requested = (
                request.get("op") == "shutdown" and response.get("ok", False)
            )
        try:
            async with write_lock:
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, OSError):
            pass  # client went away; the work (and its cache effects) stand
        if shutdown_requested:
            self.request_stop()
