"""Async client for the certification daemon.

    client = await ServiceClient.connect(socket_path="/run/repro.sock")
    response = await client.certify(graph, ["connected", "acyclic"], k=2)
    response["result"]["served"]          # {'connected': 'store', ...}
    await client.close()

One :class:`ServiceClient` multiplexes any number of concurrent
requests over a single connection: requests are tagged with
monotonically increasing ids, a background reader task resolves each
response to its waiter, and the daemon is free to answer out of order
(it serves every request as its own task).  Methods return the decoded
response envelope (``{"id", "ok", "result"|"error", "meta"}``);
:func:`result_of` unwraps it, raising :class:`ServiceClientError` on
``ok: false``.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    graph_to_wire,
)


class ServiceClientError(RuntimeError):
    """The daemon refused a request (``ok: false``) or went away."""


def result_of(response: dict) -> dict:
    """Unwrap a response envelope, raising on service-side errors."""
    if not response.get("ok"):
        raise ServiceClientError(response.get("error", "unknown error"))
    return response["result"]


class ServiceClient:
    """One multiplexed JSON-lines connection to a running daemon."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._futures: dict = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
    ) -> "ServiceClient":
        if socket_path is not None:
            reader, writer = await asyncio.open_unix_connection(socket_path)
        elif port is not None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            raise ValueError("need a TCP port or a unix socket path")
        return cls(reader, writer)

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = decode_line(line)
                except ProtocolError:
                    continue  # one garbled frame must not kill the rest
                future = self._futures.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, OSError):
            pass
        finally:
            self._fail_pending("connection closed by daemon")

    def _fail_pending(self, reason: str) -> None:
        for future in self._futures.values():
            if not future.done():
                future.set_exception(ServiceClientError(reason))
        self._futures.clear()

    # ------------------------------------------------------------------
    async def request(self, op: str, **params) -> dict:
        """Send one request and await its response envelope."""
        self._next_id += 1
        request_id = self._next_id
        request = {"id": request_id, "op": op}
        request.update(params)
        future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(encode_line(request))
                await self._writer.drain()
        except (ConnectionResetError, OSError) as exc:
            self._futures.pop(request_id, None)
            raise ServiceClientError(f"cannot reach daemon: {exc}") from exc
        return await future

    # Convenience wrappers, one per protocol op. ------------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def certify(
        self,
        graph,
        properties,
        k: Optional[int] = None,
        fresh: bool = False,
        verify: bool = True,
    ) -> dict:
        params = {
            "graph": graph_to_wire(graph),
            "properties": properties,
            "fresh": fresh,
            "verify": verify,
        }
        if k is not None:
            params["k"] = k
        return await self.request("certify", **params)

    async def reverify(self, fingerprint: str, property_key: str) -> dict:
        return await self.request(
            "reverify", fingerprint=fingerprint, property=property_key
        )

    async def audit(
        self,
        graph,
        property_key: str,
        k: Optional[int] = None,
        trials: int = 3,
        seed: int = 0,
        attacks=("mutation",),
    ) -> dict:
        params = {
            "graph": graph_to_wire(graph),
            "property": property_key,
            "trials": trials,
            "seed": seed,
            "attacks": list(attacks),
        }
        if k is not None:
            params["k"] = k
        return await self.request("audit", **params)

    async def update(
        self,
        properties,
        graph=None,
        fingerprint: Optional[str] = None,
        edits=None,
        k: Optional[int] = None,
        force_full: bool = False,
        full_round_every: Optional[int] = None,
    ) -> dict:
        """Bootstrap (``graph=``) or evolve (``fingerprint=`` + edits)
        an incremental certification stream.

        ``edits`` is an :class:`~repro.graphs.edits.EditBatch` or an
        already-wire-form list.  The response's
        ``result["fingerprint"]`` addresses the evolved state.
        """
        params = {"properties": properties, "force_full": force_full}
        if graph is not None:
            params["graph"] = graph_to_wire(graph)
        if fingerprint is not None:
            params["fingerprint"] = fingerprint
        if edits is not None:
            params["edits"] = (
                edits.to_wire() if hasattr(edits, "to_wire") else list(edits)
            )
        if k is not None:
            params["k"] = k
        if full_round_every is not None:
            params["full_round_every"] = full_round_every
        return await self.request("update", **params)

    async def metrics(self) -> dict:
        return await self.request("metrics")

    async def shutdown(self) -> dict:
        return await self.request("shutdown")

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, ServiceClientError):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
        self._fail_pending("client closed")

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
