"""Request coalescing: identical concurrent requests share one job.

A certification service's worst realistic load shape is a thundering
herd: many clients asking for the *same* ``(graph fingerprint,
property)`` at once — exactly the case where local certification is
supposed to be cheap.  :class:`Coalescer` makes the herd cost one
computation: the first request for a key starts the job; every
concurrent duplicate awaits the same task and receives the same result
object.  The key is content-derived (fingerprint, properties, k, ...),
so coalescing can never conflate distinct work.

The job runs as an independent :class:`asyncio.Task`: a waiter being
cancelled (client disconnect) does not cancel the shared computation,
and a job failure propagates the same exception to every waiter.  Keys
deregister the moment the job finishes, so a *later* identical request
starts fresh — coalescing is about concurrency, not caching (the store
and artifact cache handle repetition over time).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Tuple


class Coalescer:
    """In-flight deduplication keyed on hashable request identity."""

    def __init__(self):
        self._inflight: dict = {}  # key -> asyncio.Task

    def __len__(self) -> int:
        """Number of distinct jobs currently in flight."""
        return len(self._inflight)

    async def run(
        self, key, factory: Callable[[], Awaitable]
    ) -> Tuple[object, bool]:
        """Await the job for ``key``, starting it only if absent.

        Returns ``(result, coalesced)`` — ``coalesced`` is ``True`` when
        this call piggybacked on a job another call started.  ``factory``
        is only invoked for the first caller.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            # shield: a cancelled waiter must not tear down the shared
            # job other waiters (and the initiator) still depend on.
            return await asyncio.shield(existing), True
        task = asyncio.ensure_future(factory())
        self._inflight[key] = task

        def _deregister(done, key=key):
            # Deregister exactly once, whatever the outcome — and only
            # our own registration (a restarted key may own it by now).
            # Waiters still hold the task reference and resolve fine.
            if self._inflight.get(key) is done:
                del self._inflight[key]

        task.add_done_callback(_deregister)
        return await asyncio.shield(task), False
