"""Service-side observability: counters, gauges, latency histograms.

:class:`ServiceMetrics` is the one object the daemon mutates on every
request and serializes on demand (the ``metrics`` op, the shutdown
flush, the E11 benchmark's assertions).  Everything is guarded by one
lock — requests touch it from the event loop *and* from executor
threads — and :meth:`snapshot` returns plain JSON-safe dicts, so the
wire layer never sees the live object.

The store's own lifetime counters
(:class:`~repro.api.store.StoreMetrics`) are a separate object owned by
the store; the service embeds their snapshot next to its own (see
:meth:`CertificationService.snapshot
<repro.service.service.CertificationService.snapshot>`), keeping the
layers independently testable.
"""

from __future__ import annotations

import threading


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds), JSON-snapshot friendly.

    The buckets span sub-millisecond cache hits to multi-second cold
    proofs on a roughly-log scale; ``observe`` is O(#buckets) with tiny
    constants, fine for a per-request hot path.
    """

    BOUNDS = (
        0.001,
        0.0025,
        0.005,
        0.01,
        0.025,
        0.05,
        0.1,
        0.25,
        0.5,
        1.0,
        2.5,
        5.0,
        10.0,
    )

    __slots__ = ("counts", "overflow", "count", "total_s", "max_s")

    def __init__(self):
        self.counts = [0] * len(self.BOUNDS)
        self.overflow = 0  # observations beyond the last bound
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        for index, bound in enumerate(self.BOUNDS):
            if seconds <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    def snapshot(self) -> dict:
        buckets = {
            f"<={bound:g}s": count
            for bound, count in zip(self.BOUNDS, self.counts)
        }
        buckets[f">{self.BOUNDS[-1]:g}s"] = self.overflow
        mean = self.total_s / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_s": round(self.total_s, 6),
            "mean_s": round(mean, 6),
            "max_s": round(self.max_s, 6),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Cumulative request counters for one service's lifetime.

    * per-op ``received`` / ``completed`` / ``failed`` counts;
    * ``in_flight`` gauge (currently executing requests) and its
      high-water mark;
    * ``coalesced_requests`` — requests served by another identical
      in-flight request's computation (M identical concurrent certify
      calls run the prover once and count M-1 here);
    * ``prover_runs`` — blocking certification jobs that actually ran a
      prover (the number the coalescing/warm-store assertions watch);
    * ``store_hits`` / ``store_misses`` — certify requests served from
      the certificate store vs proven fresh (the serving-layer view;
      the store object keeps its own lower-level counters);
    * kernel counters (PR 8): ``kernel_rounds`` — verification rounds
      whose report carried :attr:`VerificationReport.kernel_stats`,
      with summed ``kernel_accepted`` / ``fallback_vertices`` /
      ``compiled_vertices`` across them — the observable proof that a
      ``vectorized`` / ``shared-memory`` engine actually decided
      vertices in the batched kernels rather than the reference path;
    * incremental counters (the ``update`` op): ``updates`` applied,
      ``bags_dirtied`` across their decomposition repairs,
      ``artifacts_reused`` from the plan DAG instead of re-run, and
      ``full_fallbacks`` — updates whose repair gave up and re-ran the
      full decomposition search;
    * decomposition counters (PR 9): per-engine run counts
      (``bnb``/``dp``/``heuristic``/``witness``), branch-and-bound
      ``nodes expanded`` / ``memo hits`` totals, ``timeouts`` (budget
      expiries that fell back to the incumbent), and
      ``width_improvements`` — runs whose exact width beat the
      heuristic portfolio's;
    * per-op latency histograms.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.received: dict = {}
        self.completed: dict = {}
        self.failed: dict = {}
        self.in_flight = 0
        self.in_flight_peak = 0
        self.coalesced_requests = 0
        self.prover_runs = 0
        self.store_hits = 0
        self.store_misses = 0
        self.updates = 0
        self.bags_dirtied = 0
        self.artifacts_reused = 0
        self.full_fallbacks = 0
        self.kernel_rounds = 0
        self.kernel_accepted = 0
        self.kernel_fallback = 0
        self.kernel_compiled = 0
        self.kernel_compile_seconds = 0.0
        self.compiled_round_hits = 0
        self.encode_runs = 0
        self.encode_seconds = 0.0
        self.decomposition_engines: dict = {}  # engine name -> runs
        self.decomposition_nodes = 0
        self.decomposition_memo_hits = 0
        self.decomposition_timeouts = 0
        self.decomposition_width_improvements = 0
        self._latency: dict = {}  # op -> LatencyHistogram

    # ------------------------------------------------------------------
    def request_started(self, op: str) -> None:
        with self._lock:
            self.received[op] = self.received.get(op, 0) + 1
            self.in_flight += 1
            if self.in_flight > self.in_flight_peak:
                self.in_flight_peak = self.in_flight

    def request_completed(self, op: str, seconds: float) -> None:
        with self._lock:
            self.completed[op] = self.completed.get(op, 0) + 1
            self.in_flight -= 1
            histogram = self._latency.get(op)
            if histogram is None:
                histogram = self._latency[op] = LatencyHistogram()
            histogram.observe(seconds)

    def request_failed(self, op: str, seconds: float) -> None:
        with self._lock:
            self.failed[op] = self.failed.get(op, 0) + 1
            self.in_flight -= 1
            histogram = self._latency.get(op)
            if histogram is None:
                histogram = self._latency[op] = LatencyHistogram()
            histogram.observe(seconds)

    def coalesced(self, count: int = 1) -> None:
        with self._lock:
            self.coalesced_requests += count

    def prover_run(self) -> None:
        with self._lock:
            self.prover_runs += 1

    def store_served(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.store_hits += 1
            else:
                self.store_misses += 1

    def kernel_round(self, stats) -> None:
        """Record one verification round's ``kernel_stats`` (if any)."""
        if not stats:
            return
        with self._lock:
            self.kernel_rounds += 1
            self.kernel_accepted += int(stats.get("kernel_accepted", 0))
            self.kernel_fallback += int(stats.get("fallback_vertices", 0))
            self.kernel_compiled += int(stats.get("compiled_vertices", 0))
            self.kernel_compile_seconds += float(
                stats.get("compile_seconds", 0.0)
            )
            if stats.get("compiled_round_cached"):
                self.compiled_round_hits += 1

    def encode_run(self, seconds: float) -> None:
        """Record one bulk wire-encode of a labeling (the cold path)."""
        with self._lock:
            self.encode_runs += 1
            self.encode_seconds += float(seconds)

    def decomposition_run(self, stats) -> None:
        """Record one report's ``decomposition_stats`` (if any)."""
        if not stats:
            return
        engine = str(stats.get("engine", "unknown"))
        with self._lock:
            self.decomposition_engines[engine] = (
                self.decomposition_engines.get(engine, 0) + 1
            )
            self.decomposition_nodes += int(stats.get("nodes_expanded", 0))
            self.decomposition_memo_hits += int(stats.get("memo_hits", 0))
            if stats.get("timed_out"):
                self.decomposition_timeouts += 1
            width = stats.get("width")
            heuristic = stats.get("heuristic_width")
            if width is not None and heuristic is not None and width < heuristic:
                self.decomposition_width_improvements += 1

    def incremental_update(
        self,
        bags_dirtied: int = 0,
        artifacts_reused: int = 0,
        fallback: bool = False,
    ) -> None:
        """Record one applied edit batch (the ``update`` op)."""
        with self._lock:
            self.updates += 1
            self.bags_dirtied += bags_dirtied
            self.artifacts_reused += artifacts_reused
            if fallback:
                self.full_fallbacks += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-safe dict of everything above."""
        with self._lock:
            return {
                "received": dict(self.received),
                "completed": dict(self.completed),
                "failed": dict(self.failed),
                "in_flight": self.in_flight,
                "in_flight_peak": self.in_flight_peak,
                "coalesced_requests": self.coalesced_requests,
                "prover_runs": self.prover_runs,
                "store_hits": self.store_hits,
                "store_misses": self.store_misses,
                "kernels": {
                    "rounds": self.kernel_rounds,
                    "kernel_accepted": self.kernel_accepted,
                    "fallback_vertices": self.kernel_fallback,
                    "compiled_vertices": self.kernel_compiled,
                    "compile_seconds": round(
                        self.kernel_compile_seconds, 6
                    ),
                    "compiled_round_hits": self.compiled_round_hits,
                },
                "encode": {
                    "runs": self.encode_runs,
                    "seconds": round(self.encode_seconds, 6),
                },
                "incremental": {
                    "updates": self.updates,
                    "bags_dirtied": self.bags_dirtied,
                    "artifacts_reused": self.artifacts_reused,
                    "full_fallbacks": self.full_fallbacks,
                },
                "decomposition": {
                    "engines": dict(self.decomposition_engines),
                    "nodes_expanded": self.decomposition_nodes,
                    "memo_hits": self.decomposition_memo_hits,
                    "timeouts": self.decomposition_timeouts,
                    "width_improvements": (
                        self.decomposition_width_improvements
                    ),
                },
                "latency": {
                    op: histogram.snapshot()
                    for op, histogram in sorted(self._latency.items())
                },
            }
