"""Certification-as-a-service: asyncio daemon over the sharded store.

The pieces the API layer grew in PRs 1–5 (facade, sessions, the
persistent :class:`~repro.api.store.CertificateStore` + artifact cache,
pool-resident prover/executor) were all single-process and blocking.
This package is the serving tier on top of them:

* :mod:`repro.service.protocol` — newline-delimited JSON wire protocol
  (requests: certify / reverify / audit / update / metrics / ping /
  shutdown); the response bodies are the PR 2/3 report JSON round-trips,
  and ``update`` serves edit streams through :mod:`repro.incremental`;
* :mod:`repro.service.service` — :class:`CertificationService`, the
  asyncio front-end: request coalescing, store-hit fast path, executor
  bridge onto thread-local sessions with resident process pools;
* :mod:`repro.service.coalesce` — in-flight deduplication (M identical
  concurrent requests → one prover run, M responses);
* :mod:`repro.service.metrics` — counters, gauges, and latency
  histograms serialized as one JSON snapshot;
* :mod:`repro.service.daemon` — the TCP/unix-socket server with
  graceful SIGTERM draining;
* :mod:`repro.service.client` — the async multiplexing client.

Run it::

    python -m repro.service --socket /tmp/repro.sock --store certs/ --k 2

See ``docs/ARCHITECTURE.md`` § "The service layer" for the request
lifecycle and ``docs/FORMAT.md`` § "Sharded store layout" for what the
store puts on disk.
"""

from repro.service.client import ServiceClient, ServiceClientError, result_of
from repro.service.coalesce import Coalescer
from repro.service.daemon import Daemon
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    graph_from_wire,
    graph_to_wire,
    ok_response,
    validate_request,
)
from repro.service.service import (
    AUDIT_ATTACKS,
    CertificationService,
    ServiceConfig,
    ServiceError,
)

__all__ = [
    "CertificationService",
    "ServiceConfig",
    "ServiceError",
    "Daemon",
    "ServiceClient",
    "ServiceClientError",
    "result_of",
    "Coalescer",
    "ServiceMetrics",
    "LatencyHistogram",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "AUDIT_ATTACKS",
    "graph_to_wire",
    "graph_from_wire",
    "encode_line",
    "decode_line",
    "ok_response",
    "error_response",
    "validate_request",
]
