"""Legacy setup shim: the execution environment has no `wheel` package and
no network, so PEP 517 editable installs are unavailable; this enables
`pip install -e . --no-build-isolation` via `setup.py develop`.

All project metadata lives in pyproject.toml (the source of truth);
this file intentionally stays an empty pass-through."""

from setuptools import setup

setup()
