"""Legacy setup shim: the execution environment has no `wheel` package and
no network, so PEP 517 editable installs are unavailable; this enables
`pip install -e . --no-build-isolation` via `setup.py develop`."""

from setuptools import setup

setup()
